#include "sweep.hh"

#include <algorithm>
#include <cstdlib>

#include "dse/sweep_engine.hh"
#include "sim/logging.hh"

namespace genie
{

const std::vector<unsigned> &
DesignSpace::laneValues()
{
    static const std::vector<unsigned> v = {1, 2, 4, 8, 16};
    return v;
}

const std::vector<unsigned> &
DesignSpace::partitionValues()
{
    static const std::vector<unsigned> v = {1, 2, 4, 8, 16};
    return v;
}

const std::vector<unsigned> &
DesignSpace::cacheSizeValues()
{
    static const std::vector<unsigned> v = {
        2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024,
        64 * 1024};
    return v;
}

const std::vector<unsigned> &
DesignSpace::cacheLineValues()
{
    static const std::vector<unsigned> v = {16, 32, 64};
    return v;
}

const std::vector<unsigned> &
DesignSpace::cachePortValues()
{
    static const std::vector<unsigned> v = {1, 2, 4, 8};
    return v;
}

const std::vector<unsigned> &
DesignSpace::cacheAssocValues()
{
    static const std::vector<unsigned> v = {4, 8};
    return v;
}

std::vector<SocConfig>
DesignSpace::isolated(const SocConfig &base)
{
    std::vector<SocConfig> configs;
    for (unsigned lanes : laneValues()) {
        for (unsigned parts : partitionValues()) {
            SocConfig c = base;
            c.memType = MemInterface::ScratchpadDma;
            c.lanes = lanes;
            c.spadPartitions = parts;
            c.isolated = true;
            configs.push_back(std::move(c));
        }
    }
    return configs;
}

std::vector<SocConfig>
DesignSpace::dma(const SocConfig &base)
{
    std::vector<SocConfig> configs;
    for (unsigned lanes : laneValues()) {
        for (unsigned parts : partitionValues()) {
            SocConfig c = base;
            c.memType = MemInterface::ScratchpadDma;
            c.lanes = lanes;
            c.spadPartitions = parts;
            c.isolated = false;
            c.dma.pipelined = true;
            c.dma.triggeredCompute = true;
            configs.push_back(std::move(c));
        }
    }
    return configs;
}

std::vector<SocConfig>
DesignSpace::dmaOptions(const SocConfig &base)
{
    std::vector<SocConfig> configs;
    for (unsigned lanes : laneValues()) {
        for (unsigned parts : partitionValues()) {
            for (int pipe = 0; pipe <= 1; ++pipe) {
                for (int trig = 0; trig <= 1; ++trig) {
                    SocConfig c = base;
                    c.memType = MemInterface::ScratchpadDma;
                    c.lanes = lanes;
                    c.spadPartitions = parts;
                    c.isolated = false;
                    c.dma.pipelined = pipe != 0;
                    c.dma.triggeredCompute = trig != 0;
                    configs.push_back(std::move(c));
                }
            }
        }
    }
    return configs;
}

std::vector<SocConfig>
DesignSpace::cache(const SocConfig &base)
{
    std::vector<SocConfig> configs;
    for (unsigned lanes : laneValues()) {
        for (unsigned size : cacheSizeValues()) {
            for (unsigned line : cacheLineValues()) {
                for (unsigned ports : cachePortValues()) {
                    for (unsigned assoc : cacheAssocValues()) {
                        SocConfig c = base;
                        c.memType = MemInterface::Cache;
                        c.lanes = lanes;
                        // Private scratchpads (intermediate data)
                        // are co-designed with the datapath: match
                        // their banking to the lane count.
                        c.spadPartitions = lanes;
                        c.isolated = false;
                        c.cache.sizeBytes = size;
                        c.cache.lineBytes = line;
                        c.cache.ports = ports;
                        c.cache.assoc = assoc;
                        configs.push_back(std::move(c));
                    }
                }
            }
        }
    }
    return configs;
}

std::vector<SocConfig>
DesignSpace::acp(const SocConfig &base)
{
    std::vector<SocConfig> configs;
    for (unsigned lanes : laneValues()) {
        for (unsigned parts : partitionValues()) {
            SocConfig c = base;
            c.memType = MemInterface::ScratchpadDma;
            c.iface.memType = IfaceMemType::Acp;
            c.lanes = lanes;
            c.spadPartitions = parts;
            c.isolated = false;
            // The ACP replaces the flush+DMA path entirely, so the
            // DMA-latency optimizations have nothing to optimize.
            c.dma.pipelined = false;
            c.dma.triggeredCompute = false;
            configs.push_back(std::move(c));
        }
    }
    return configs;
}

std::vector<SocConfig>
DesignSpace::iface(const SocConfig &base)
{
    std::vector<SocConfig> configs;
    const CompletionMode modes[] = {CompletionMode::Spin,
                                    CompletionMode::Interrupt};
    for (CompletionMode mode : modes) {
        SocConfig b = base;
        b.iface.completion = mode;
        for (auto &c : dma(b))
            configs.push_back(std::move(c));
        for (auto &c : acp(b))
            configs.push_back(std::move(c));
        // One default-parameter cache design per lane count keeps the
        // hardware-coherent regime on the chart without exploding the
        // point count (the full cache space is DesignSpace::cache).
        for (unsigned lanes : laneValues()) {
            SocConfig c = b;
            c.memType = MemInterface::Cache;
            c.iface.memType = IfaceMemType::Cache;
            c.lanes = lanes;
            c.spadPartitions = lanes;
            c.isolated = false;
            configs.push_back(std::move(c));
        }
    }
    return configs;
}

SocConfig
DesignSpace::isolatedAsCache(const SocConfig &isolated,
                             std::uint64_t workingSetBytes)
{
    SocConfig c = isolated;
    c.memType = MemInterface::Cache;
    c.isolated = false;
    unsigned size = cacheSizeValues().front();
    for (unsigned s : cacheSizeValues()) {
        size = s;
        if (s >= workingSetBytes)
            break;
    }
    c.cache.sizeBytes = size;
    c.cache.lineBytes = 64;
    c.cache.assoc = 4;
    c.cache.ports = std::min(8u, isolated.spadPartitions);
    return c;
}

namespace
{

bool
axisAccepts(const std::vector<unsigned> &allowed, unsigned value)
{
    return allowed.empty() ||
           std::find(allowed.begin(), allowed.end(), value) !=
               allowed.end();
}

bool
axisAcceptsName(const std::vector<std::string> &allowed,
                const char *value)
{
    return allowed.empty() ||
           std::find(allowed.begin(), allowed.end(), value) !=
               allowed.end();
}

/** A config's interface regime for mem_type filtering. */
const char *
regimeName(const SocConfig &c)
{
    if (c.memType == MemInterface::Cache)
        return "cache";
    return c.iface.anyAcp() ? "acp" : "dma";
}

std::vector<std::string>
parseAxisNames(const std::string &axis, const std::string &csv,
               std::initializer_list<const char *> valid)
{
    std::vector<std::string> values;
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t comma = csv.find(',', start);
        std::string item = csv.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        bool ok = false;
        for (const char *v : valid)
            ok = ok || item == v;
        if (!ok) {
            fatal("filter axis %s: unknown value '%s'", axis.c_str(),
                  item.c_str());
        }
        values.push_back(std::move(item));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return values;
}

std::vector<unsigned>
parseAxisValues(const std::string &axis, const std::string &csv)
{
    std::vector<unsigned> values;
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t comma = csv.find(',', start);
        std::string item = csv.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        char *end = nullptr;
        unsigned long v = std::strtoul(item.c_str(), &end, 10);
        if (end == item.c_str() || *end != '\0') {
            fatal("filter axis %s: expected a number, got '%s'",
                  axis.c_str(), item.c_str());
        }
        values.push_back(static_cast<unsigned>(v));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return values;
}

} // namespace

bool
SpaceFilter::accepts(const SocConfig &c) const
{
    if (!axisAccepts(lanes, c.lanes) ||
        !axisAccepts(partitions, c.spadPartitions))
        return false;
    if (!axisAcceptsName(memTypes, regimeName(c)) ||
        !axisAcceptsName(completions,
                         completionModeName(c.iface.completion)))
        return false;
    if (c.memType != MemInterface::Cache)
        return true;
    return axisAccepts(cacheKb, c.cache.sizeBytes / 1024) &&
           axisAccepts(cacheLine, c.cache.lineBytes) &&
           axisAccepts(cachePorts, c.cache.ports) &&
           axisAccepts(cacheAssoc, c.cache.assoc);
}

SpaceFilter
SpaceFilter::parse(const std::string &spec)
{
    SpaceFilter f;
    std::size_t start = 0;
    while (start < spec.size()) {
        std::size_t semi = spec.find(';', start);
        std::string clause = spec.substr(
            start, semi == std::string::npos ? std::string::npos
                                             : semi - start);
        if (!clause.empty()) {
            std::size_t eq = clause.find('=');
            if (eq == std::string::npos) {
                fatal("filter clause '%s': expected axis=v1,v2,...",
                      clause.c_str());
            }
            std::string axis = clause.substr(0, eq);
            std::string csv = clause.substr(eq + 1);
            if (axis == "lanes")
                f.lanes = parseAxisValues(axis, csv);
            else if (axis == "partitions")
                f.partitions = parseAxisValues(axis, csv);
            else if (axis == "cache_kb")
                f.cacheKb = parseAxisValues(axis, csv);
            else if (axis == "cache_line")
                f.cacheLine = parseAxisValues(axis, csv);
            else if (axis == "cache_ports")
                f.cachePorts = parseAxisValues(axis, csv);
            else if (axis == "cache_assoc")
                f.cacheAssoc = parseAxisValues(axis, csv);
            else if (axis == "mem_type")
                f.memTypes = parseAxisNames(axis, csv,
                                            {"dma", "acp", "cache"});
            else if (axis == "completion")
                f.completions = parseAxisNames(axis, csv,
                                               {"spin", "interrupt"});
            else
                fatal("unknown filter axis '%s'", axis.c_str());
        }
        if (semi == std::string::npos)
            break;
        start = semi + 1;
    }
    return f;
}

std::vector<SocConfig>
filterConfigs(const std::vector<SocConfig> &configs,
              const SpaceFilter &filter)
{
    std::vector<SocConfig> out;
    for (const auto &c : configs) {
        if (filter.accepts(c))
            out.push_back(c);
    }
    return out;
}

std::vector<DesignPoint>
runSweep(const std::vector<SocConfig> &configs, const Trace &trace,
         const Dddg &dddg, unsigned threads)
{
    SweepOptions options;
    options.threads = threads;
    SweepEngine engine(std::move(options));
    return engine.run(configs, trace, dddg);
}

} // namespace genie
