#include "job.hh"

#include "accel/dddg.hh"
#include "core/config_parse.hh"
#include "dse/sweep_engine.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace genie
{

namespace
{

/** Minimal JSON string escaping; descriptor fields are plain ASCII
 * (workload names, `key=value` pairs, filter specs). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::vector<SocConfig>
enumerateSpace(const std::string &space, const SocConfig &base)
{
    if (space == "single")
        return {base};
    if (space == "isolated")
        return DesignSpace::isolated(base);
    if (space == "dma")
        return DesignSpace::dma(base);
    if (space == "fig6" || space == "dma-options")
        return DesignSpace::dmaOptions(base);
    if (space == "cache")
        return DesignSpace::cache(base);
    if (space == "fig8") {
        auto configs = DesignSpace::dma(base);
        auto cacheConfigs = DesignSpace::cache(base);
        configs.insert(configs.end(), cacheConfigs.begin(),
                       cacheConfigs.end());
        return configs;
    }
    if (space == "acp")
        return DesignSpace::acp(base);
    if (space == "iface")
        return DesignSpace::iface(base);
    fatal("unknown space '%s' "
          "(single|isolated|dma|fig6|cache|fig8|acp|iface)",
          space.c_str());
}

std::vector<SocConfig>
jobConfigs(const JobDescriptor &job)
{
    SocConfig base = parseConfig(job.config);
    auto configs = enumerateSpace(job.space, base);
    if (!job.filter.empty()) {
        configs =
            filterConfigs(configs, SpaceFilter::parse(job.filter));
    }
    if (configs.empty())
        fatal("job %s: the filter rejected every design point",
              job.id.empty() ? describeJob(job).c_str()
                             : job.id.c_str());
    return configs;
}

std::string
describeJob(const JobDescriptor &job)
{
    std::string s = job.workload + " space=" + job.space;
    if (!job.filter.empty())
        s += " filter=" + job.filter;
    for (const auto &opt : job.config)
        s += " " + opt;
    return s;
}

std::string
jobJsonLine(const JobDescriptor &job)
{
    std::string s = "{\"schema\": \"genie-serve-job-1\"";
    if (!job.id.empty())
        s += format(", \"id\": \"%s\"", jsonEscape(job.id).c_str());
    s += format(", \"workload\": \"%s\", \"space\": \"%s\"",
                jsonEscape(job.workload).c_str(),
                jsonEscape(job.space).c_str());
    if (!job.filter.empty()) {
        s += format(", \"filter\": \"%s\"",
                    jsonEscape(job.filter).c_str());
    }
    if (!job.config.empty()) {
        s += ", \"config\": [";
        for (std::size_t i = 0; i < job.config.size(); ++i) {
            s += format("%s\"%s\"", i ? ", " : "",
                        jsonEscape(job.config[i]).c_str());
        }
        s += "]";
    }
    s += format(", \"threads\": %u}\n", job.threads);
    return s;
}

std::vector<DesignPoint>
runJob(const JobDescriptor &job, SweepEngine &engine)
{
    auto built = makeWorkload(job.workload)->build();
    Dddg dddg(built.trace);
    auto configs = jobConfigs(job);
    return engine.run(configs, built.trace, dddg);
}

} // namespace genie
