#include "pareto.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace genie
{

std::vector<std::size_t>
paretoFrontier(const std::vector<DesignPoint> &points)
{
    std::vector<std::size_t> order(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const auto &ra = points[a].results;
                  const auto &rb = points[b].results;
                  if (ra.totalTicks != rb.totalTicks)
                      return ra.totalTicks < rb.totalTicks;
                  return ra.avgPowerMw < rb.avgPowerMw;
              });

    std::vector<std::size_t> frontier;
    double bestPower = std::numeric_limits<double>::infinity();
    for (std::size_t i : order) {
        double p = points[i].results.avgPowerMw;
        if (p < bestPower) {
            frontier.push_back(i);
            bestPower = p;
        }
    }
    return frontier;
}

std::size_t
edpOptimal(const std::vector<DesignPoint> &points)
{
    GENIE_ASSERT(!points.empty(), "EDP optimum of empty set");
    std::size_t best = 0;
    for (std::size_t i = 1; i < points.size(); ++i) {
        if (points[i].results.edp < points[best].results.edp)
            best = i;
    }
    return best;
}

KiviatAxes
kiviatAxes(const DesignPoint &point, const DesignPoint &reference)
{
    KiviatAxes k;
    const auto &r = point.results;
    const auto &ref = reference.results;
    k.lanes = ref.lanes > 0 ? static_cast<double>(r.lanes) /
                                  static_cast<double>(ref.lanes)
                            : 0.0;
    k.sramSize =
        ref.localSramBytes > 0
            ? static_cast<double>(r.localSramBytes) /
                  static_cast<double>(ref.localSramBytes)
            : 0.0;
    k.memBandwidth =
        ref.localMemBandwidthBytesPerCycle > 0
            ? r.localMemBandwidthBytesPerCycle /
                  ref.localMemBandwidthBytesPerCycle
            : 0.0;
    return k;
}

CodesignComparison
compareCodesign(
    const std::vector<DesignPoint> &isolatedPoints,
    const std::vector<DesignPoint> &systemPoints,
    const std::function<DesignPoint(const SocConfig &)> &evalIsolated)
{
    CodesignComparison cmp;
    cmp.isolatedOptimal = isolatedPoints[edpOptimal(isolatedPoints)];
    cmp.isolatedUnderSystem =
        evalIsolated(cmp.isolatedOptimal.config);
    cmp.codesignedOptimal = systemPoints[edpOptimal(systemPoints)];
    double denom = cmp.codesignedOptimal.results.edp;
    cmp.edpImprovement =
        denom > 0 ? cmp.isolatedUnderSystem.results.edp / denom : 0.0;
    return cmp;
}

} // namespace genie
