#include "journal.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/fingerprint.hh"
#include "metrics/export.hh"
#include "sim/logging.hh"

namespace genie
{

namespace
{

std::string
u64Field(const char *name, std::uint64_t v)
{
    return format("\"%s\": %llu", name, (unsigned long long)v);
}

std::string
dblField(const char *name, double v)
{
    return format("\"%s\": %s", name, formatStatNumber(v).c_str());
}

/** Value text after `"name": `, or empty when absent. */
std::string
fieldText(const std::string &line, const char *name)
{
    std::string needle = format("\"%s\": ", name);
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return "";
    return line.substr(pos + needle.size());
}

bool
parseU64Field(const std::string &line, const char *name,
              std::uint64_t &out)
{
    std::string text = fieldText(line, name);
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return end != text.c_str();
}

bool
parseDblField(const std::string &line, const char *name, double &out)
{
    std::string text = fieldText(line, name);
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end != text.c_str();
}

bool
parseStringField(const std::string &line, const char *name,
                 std::string &out)
{
    std::string needle = format("\"%s\": \"", name);
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    std::size_t begin = pos + needle.size();
    // Canonical keys and fingerprints are plain `key=value` ASCII —
    // no quotes or escapes — so the closing quote is unambiguous.
    std::size_t end = line.find('"', begin);
    if (end == std::string::npos)
        return false;
    out = line.substr(begin, end - begin);
    return true;
}

} // namespace

std::string
journalHeaderLine()
{
    return "{\"schema\": \"genie-sweep-1\"}\n";
}

std::string
resultsJson(const SocResults &r)
{
    std::string s = "{";
    s += u64Field("total_ticks", r.totalTicks) + ", ";
    s += u64Field("accel_cycles", r.accelCycles) + ", ";
    s += u64Field("flush_only", r.breakdown.flushOnly) + ", ";
    s += u64Field("dma_flush", r.breakdown.dmaFlush) + ", ";
    s += u64Field("compute_dma", r.breakdown.computeDma) + ", ";
    s += u64Field("compute_only", r.breakdown.computeOnly) + ", ";
    s += u64Field("other", r.breakdown.other) + ", ";
    s += dblField("energy_pj", r.energyPj) + ", ";
    s += dblField("dynamic_pj", r.dynamicPj) + ", ";
    s += dblField("leakage_pj", r.leakagePj) + ", ";
    s += dblField("avg_power_mw", r.avgPowerMw) + ", ";
    s += dblField("edp", r.edp) + ", ";
    s += dblField("cache_miss_rate", r.cacheMissRate) + ", ";
    s += dblField("tlb_hit_rate", r.tlbHitRate) + ", ";
    s += dblField("dram_row_hit_rate", r.dramRowHitRate) + ", ";
    s += dblField("bus_utilization", r.busUtilization) + ", ";
    s += u64Field("dma_bytes", r.dmaBytes) + ", ";
    s += u64Field("spad_conflicts", r.spadConflicts) + ", ";
    s += u64Field("ready_bit_stalls", r.readyBitStalls) + ", ";
    s += u64Field("cache_to_cache", r.cacheToCacheTransfers) + ", ";
    s += u64Field("stalled", r.stalled ? 1 : 0) + ", ";
    s += u64Field("local_sram_bytes", r.localSramBytes) + ", ";
    s += dblField("local_mem_bw", r.localMemBandwidthBytesPerCycle) +
         ", ";
    s += u64Field("lanes", r.lanes);
    s += "}";
    return s;
}

std::string
journalRecordLine(const std::string &key, std::uint64_t fingerprint,
                  const SocResults &results)
{
    return format("{\"fp\": \"%s\", \"key\": \"%s\", \"results\": ",
                  fingerprintHex(fingerprint).c_str(), key.c_str()) +
           resultsJson(results) + "}\n";
}

bool
parseJournalLine(const std::string &line, JournalRecord &out)
{
    if (line.find("\"schema\"") != std::string::npos)
        return false;
    // A record always closes with the results object's "}}"; a torn
    // line (killed mid-write) cannot, and is skipped.
    std::size_t end = line.find_last_not_of(" \t\r");
    if (end == std::string::npos || end < 1 ||
        line.compare(end - 1, 2, "}}") != 0)
        return false;

    JournalRecord rec;
    std::string fpHex;
    if (!parseStringField(line, "fp", fpHex) ||
        !parseStringField(line, "key", rec.key))
        return false;
    rec.fingerprint = std::strtoull(fpHex.c_str(), nullptr, 16);

    SocResults &r = rec.results;
    std::uint64_t stalled = 0;
    bool ok = parseU64Field(line, "total_ticks", r.totalTicks) &&
              parseU64Field(line, "accel_cycles", r.accelCycles) &&
              parseU64Field(line, "flush_only",
                            r.breakdown.flushOnly) &&
              parseU64Field(line, "dma_flush",
                            r.breakdown.dmaFlush) &&
              parseU64Field(line, "compute_dma",
                            r.breakdown.computeDma) &&
              parseU64Field(line, "compute_only",
                            r.breakdown.computeOnly) &&
              parseU64Field(line, "other", r.breakdown.other) &&
              parseDblField(line, "energy_pj", r.energyPj) &&
              parseDblField(line, "dynamic_pj", r.dynamicPj) &&
              parseDblField(line, "leakage_pj", r.leakagePj) &&
              parseDblField(line, "avg_power_mw", r.avgPowerMw) &&
              parseDblField(line, "edp", r.edp) &&
              parseDblField(line, "cache_miss_rate",
                            r.cacheMissRate) &&
              parseDblField(line, "tlb_hit_rate", r.tlbHitRate) &&
              parseDblField(line, "dram_row_hit_rate",
                            r.dramRowHitRate) &&
              parseDblField(line, "bus_utilization",
                            r.busUtilization) &&
              parseU64Field(line, "dma_bytes", r.dmaBytes) &&
              parseU64Field(line, "spad_conflicts",
                            r.spadConflicts) &&
              parseU64Field(line, "ready_bit_stalls",
                            r.readyBitStalls) &&
              parseU64Field(line, "cache_to_cache",
                            r.cacheToCacheTransfers) &&
              parseU64Field(line, "stalled", stalled) &&
              parseU64Field(line, "local_sram_bytes",
                            r.localSramBytes) &&
              parseDblField(line, "local_mem_bw",
                            r.localMemBandwidthBytesPerCycle);
    std::uint64_t lanes = 0;
    ok = ok && parseU64Field(line, "lanes", lanes);
    if (!ok)
        return false;
    r.stalled = stalled != 0;
    r.lanes = static_cast<unsigned>(lanes);
    out = std::move(rec);
    return true;
}

JournalLoadResult
loadJournalChecked(const std::string &path)
{
    JournalLoadResult out;
    std::ifstream in(path);
    if (!in)
        return out;
    std::string line;
    bool sawHeader = false;
    bool first = true;
    bool lastLineBad = false;
    while (std::getline(in, line)) {
        if (line.find("\"schema\": \"genie-sweep-1\"") !=
            std::string::npos) {
            sawHeader = true;
            first = false;
            lastLineBad = false;
            continue;
        }
        if (first && !line.empty()) {
            fatal("journal %s: missing genie-sweep-1 header — not a "
                  "sweep journal",
                  path.c_str());
        }
        first = false;
        // A previously seen bad line turned out to be *interior*
        // (something followed it): that is corruption, not a torn
        // tail, and silently skipping it would make disk corruption
        // invisible. Count it; the final tally is warned below.
        if (lastLineBad)
            ++out.corruptLines;
        lastLineBad = false;
        if (line.empty())
            continue;
        JournalRecord rec;
        if (parseJournalLine(line, rec))
            out.records.push_back(std::move(rec));
        else
            lastLineBad = true;
    }
    out.tornFinalLine = lastLineBad;
    if (!out.records.empty() && !sawHeader) {
        fatal("journal %s: records without a genie-sweep-1 header",
              path.c_str());
    }
    if (out.corruptLines > 0) {
        warn("journal %s: skipped %zu corrupt interior line(s) — "
             "this is disk corruption, not an interrupted write; the "
             "affected points will be re-simulated",
             path.c_str(), out.corruptLines);
    }
    return out;
}

std::vector<JournalRecord>
loadJournal(const std::string &path)
{
    return loadJournalChecked(path).records;
}

void
writeSweepResultsJson(std::ostream &os,
                      const std::vector<DesignPoint> &points,
                      const std::string &workload)
{
    os << "{\"schema\": \"genie-sweep-results-1\",\n";
    if (!workload.empty())
        os << "  \"workload\": \"" << workload << "\",\n";
    os << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const DesignPoint &p = points[i];
        const std::string key = configCanonicalKey(p.config);
        os << "    {\"fp\": \""
           << fingerprintHex(configFingerprint(p.config))
           << "\", \"key\": \"" << key << "\",\n     \"results\": "
           << resultsJson(p.results) << "}"
           << (i + 1 < points.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

} // namespace genie
