/**
 * @file
 * The sweep checkpoint journal and the deterministic results export.
 *
 * Journal (schema `genie-sweep-1`): a JSON-lines file. The first line
 * is a header object naming the schema; every subsequent line is one
 * completed design point — canonical config key, fingerprint, and the
 * full SocResults — appended and flushed the moment the point
 * finishes. An interrupted sweep therefore loses at most the points
 * still in flight; resuming loads the journal into the ResultCache
 * and re-simulates only what is missing. The loader skips a torn
 * final line (the kill-mid-write case) instead of failing.
 *
 * Results export (schema `genie-sweep-results-1`): the whole sweep in
 * config order as one JSON document. Output is deterministic — field
 * order is frozen and numbers use formatStatNumber's shortest-round-
 * trip formatting — so exports byte-compare across runs, thread
 * counts, and cold/warm caches (the golden-figure suite's contract).
 *
 * All doubles round-trip exactly through serialize/parse, so a result
 * restored from a journal is bit-identical to the freshly simulated
 * one.
 */

#ifndef GENIE_DSE_JOURNAL_HH
#define GENIE_DSE_JOURNAL_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "dse/sweep.hh"
#include "sim/thread_safety.hh"

namespace genie
{

/** One journal line: a completed design point. */
struct JournalRecord GENIE_THREAD_LOCAL_OK
{
    std::string key;          ///< configCanonicalKey of the point
    std::uint64_t fingerprint = 0;
    SocResults results;
};

/** The `genie-sweep-1` header line. */
std::string journalHeaderLine();

/** Serialize one completed point as a single JSON line (with
 * trailing newline). */
std::string journalRecordLine(const std::string &key,
                              std::uint64_t fingerprint,
                              const SocResults &results);

/**
 * Parse one journal line. Returns false (without touching @p out) for
 * the header line, blank lines, and torn/corrupt lines — the caller
 * just skips them.
 */
bool parseJournalLine(const std::string &line, JournalRecord &out);

/** Everything loadJournalChecked learned about a journal file. */
struct JournalLoadResult GENIE_THREAD_LOCAL_OK
{
    std::vector<JournalRecord> records;
    /**
     * Interior lines that failed to parse: non-blank, non-header
     * lines other than a torn *final* line. A torn final line is the
     * expected kill-mid-write shape and stays silent; anything else
     * is disk corruption and must never be invisible — the loader
     * warns loudly and callers surface this count (the engine's
     * journal_corrupt_lines stat, genie_sweep's corrupt_lines resume
     * field).
     */
    std::size_t corruptLines = 0;
    /** True when the final line was torn (skipped silently). */
    bool tornFinalLine = false;
};

/**
 * Load every complete record from @p path, counting interior corrupt
 * lines (see JournalLoadResult). A missing file is an empty journal
 * (first run of a `--resume` path), but a file that exists and lacks
 * the `genie-sweep-1` header is a user error: fatal().
 */
JournalLoadResult loadJournalChecked(const std::string &path);

/** The records of loadJournalChecked(), for callers that do not
 * inspect corruption counts themselves (the loader still warns). */
std::vector<JournalRecord> loadJournal(const std::string &path);

/** Serialize @p results as the frozen `"results": {...}` object body
 * used by both the journal and the results export. */
std::string resultsJson(const SocResults &r);

/**
 * Write a full sweep as `genie-sweep-results-1` JSON, points in
 * @p points order. @p workload is an optional label ("" omits it).
 */
void writeSweepResultsJson(std::ostream &os,
                           const std::vector<DesignPoint> &points,
                           const std::string &workload = "");

} // namespace genie

#endif // GENIE_DSE_JOURNAL_HH
