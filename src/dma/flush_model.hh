/**
 * @file
 * Analytic cache flush/invalidate engine (Sections III-C and IV-B1).
 *
 * DMA engines cannot read private CPU caches, so before a transfer the
 * CPU must flush input data and invalidate the output region. The
 * paper characterizes this cost on real hardware (Zedboard Cortex-A9:
 * one line per 56 CPU cycles at 667 MHz, i.e. 84 ns per flushed line
 * and 71 ns per invalidated line) and includes it analytically in the
 * simulator; we do the same.
 *
 * The engine processes work in page-sized chunks and reports per-chunk
 * completion so pipelined DMA can overlap the DMA of chunk b with the
 * flush of chunk b+1.
 */

#ifndef GENIE_DMA_FLUSH_MODEL_HH
#define GENIE_DMA_FLUSH_MODEL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/clocked.hh"
#include "sim/interval_set.hh"
#include "sim/sim_object.hh"

namespace genie
{

class FlushEngine : public SimObject
{
  public:
    struct Params
    {
        Tick flushPerLine = 84 * tickPerNs;
        Tick invalidatePerLine = 71 * tickPerNs;
        unsigned lineBytes = 64;
    };

    /** (chunkIndex) -> called when that chunk's flush completes. */
    using ChunkCallback = std::function<void(std::size_t chunkIndex)>;
    using DoneCallback = std::function<void()>;

    FlushEngine(std::string name, EventQueue &eq, Params params);

    /**
     * Flush @p totalBytes of cached data in @p chunkBytes chunks,
     * starting now. @p onChunk fires as each chunk completes (may be
     * null); @p onDone fires when everything is flushed.
     * @return the number of chunks.
     */
    std::size_t startFlush(std::uint64_t totalBytes,
                           std::uint64_t chunkBytes,
                           ChunkCallback onChunk, DoneCallback onDone);

    /**
     * Flush explicitly sized chunks (pipelined DMA uses per-page
     * chunks that respect array boundaries). @p onChunk fires per
     * chunk in order; @p onDone after the last.
     */
    void startFlushChunks(const std::vector<std::uint64_t> &chunkBytes,
                          ChunkCallback onChunk, DoneCallback onDone);

    /** Invalidate @p totalBytes (single chunk; cheap). */
    void startInvalidate(std::uint64_t totalBytes, DoneCallback onDone);

    /** Pure function: flush duration of @p bytes worth of lines. */
    Tick flushLatency(std::uint64_t bytes) const;

    /** Pure function: invalidate duration of @p bytes. */
    Tick invalidateLatency(std::uint64_t bytes) const;

    /** Ticks during which the engine (i.e. the CPU) was flushing or
     * invalidating. */
    const IntervalSet &busyIntervals() const { return busy; }

    bool idle() const { return !active; }

  private:
    Params params;
    EventQueue &eventq;
    IntervalSet busy;
    bool active = false;
    /** Time the engine becomes free (flushes serialize on the CPU). */
    Tick freeAt = 0;

    Stat &statLinesFlushed;
    Stat &statLinesInvalidated;
};

} // namespace genie

#endif // GENIE_DMA_FLUSH_MODEL_HH
