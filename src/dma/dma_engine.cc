#include "dma_engine.hh"

#include "fault/fault_injector.hh"
#include "sim/logging.hh"

namespace genie
{

DmaEngine::DmaEngine(std::string name, EventQueue &eq, ClockDomain domain,
                     SystemBus &bus_, Params p)
    : SimObject(std::move(name)), Clocked(eq, domain), params(p),
      bus(bus_),
      statTransactions(stats().add("transactions",
                                   "DMA transactions serviced")),
      statSegments(stats().add("segments", "descriptors serviced")),
      statBeats(stats().add("beats", "bus beats issued")),
      statBytes(stats().add("bytes", "payload bytes transferred")),
      statDescriptorFetches(stats().add("descriptorFetches",
                                        "descriptor fetch reads")),
      statErrors(stats().add("errors", "beats observed failed")),
      statRetries(stats().add("retries",
                              "beats reissued after an error")),
      statRetryExhausted(stats().add(
          "retryExhausted",
          "transactions failed after exhausting retries"))
{
    if (params.beatBytes == 0 || params.maxOutstanding == 0)
        fatal("DMA beat size and window must be non-zero");
    busPort = bus.attachClient(this, /*snooper=*/false);
    eq.registerStats(stats());
}

void
DmaEngine::startTransaction(Direction dir, std::vector<Segment> segments,
                            BeatCallback onBeat, DoneCallback onDone)
{
    // Drop empty segments up front.
    std::vector<Segment> live;
    for (auto &s : segments) {
        if (s.len > 0)
            live.push_back(s);
    }
    pending.push_back({dir, std::move(live), std::move(onBeat),
                       std::move(onDone)});
    if (!active)
        startNext();
}

void
DmaEngine::startNext()
{
    GENIE_ASSERT(!active, "startNext while a transaction is active");
    if (pending.empty())
        return;
    active = true;
    current = std::move(pending.front());
    pending.pop_front();
    segIndex = 0;
    txnFailed = false;
    txnStart = eventq.curTick();
    ++statTransactions;

    if (Tracer *t = tracerFor(eventq, TraceCategory::Dma)) {
        txnSpan = t->begin(TraceCategory::Dma, name(),
                           current.dir == Direction::MemToAccel
                               ? "load"
                               : "store");
        // The setup window's end tick is known analytically.
        t->complete(TraceCategory::Dma, name(), "setup", txnStart,
                    clockEdge(params.setupCycles));
    }

    // Fixed setup: metadata reads, CPU initiation, housekeeping.
    scheduleCycles(params.setupCycles, [this] {
        if (current.segments.empty())
            finishTransaction();
        else
            beginSegment();
    }, "dma.setup");
}

void
DmaEngine::beginSegment()
{
    ++statSegments;
    segIssued = 0;
    segCompleted = 0;

    if (Tracer *t = tracerFor(eventq, TraceCategory::Dma))
        chunkSpan = t->begin(TraceCategory::Dma, name(), "chunk");

    if (params.fetchDescriptors) {
        // The descriptor itself is fetched from main memory.
        ++statDescriptorFetches;
        if (Tracer *t = tracerFor(eventq, TraceCategory::Dma))
            descSpan = t->begin(TraceCategory::Dma, name(),
                                "descriptor");
        std::uint64_t id = nextReqId++;
        Addr descAddr = current.segments[segIndex].busAddr;
        inFlight.emplace(id, BeatInfo{0, 0, 0, /*isDescriptor=*/true,
                                      descAddr, 0});
        Packet pkt;
        pkt.cmd = MemCmd::ReadShared;
        pkt.addr = descAddr; // descriptor home
        pkt.size = 16;
        pkt.reqId = id;
        ++outstanding;
        bus.sendRequest(busPort, pkt);
    } else {
        pump();
    }
}

void
DmaEngine::pump()
{
    if (txnFailed)
        return;
    const Segment &seg = current.segments[segIndex];
    while (outstanding < params.maxOutstanding && segIssued < seg.len) {
        auto len = static_cast<unsigned>(std::min<std::uint64_t>(
            params.beatBytes, seg.len - segIssued));
        std::uint64_t id = nextReqId++;
        inFlight.emplace(id, BeatInfo{seg.arrayId,
                                      seg.arrayOffset + segIssued, len,
                                      /*isDescriptor=*/false,
                                      seg.busAddr + segIssued, 0});
        Packet pkt;
        pkt.addr = seg.busAddr + segIssued;
        pkt.size = len;
        pkt.reqId = id;
        pkt.cmd = current.dir == Direction::MemToAccel
                      ? MemCmd::ReadShared
                      : MemCmd::WriteReq;
        ++outstanding;
        ++statBeats;
        segIssued += len;
        bus.sendRequest(busPort, pkt);
    }
}

void
DmaEngine::recvResponse(const Packet &pkt)
{
    auto it = inFlight.find(pkt.reqId);
    GENIE_ASSERT(it != inFlight.end(), "DMA response with unknown reqId");
    BeatInfo info = it->second;
    inFlight.erase(it);
    GENIE_ASSERT(outstanding > 0, "DMA outstanding underflow");

    // A beat fails if the memory system answered with an error, or if
    // the engine-boundary fault site corrupts an otherwise-good beat.
    bool failed = pkt.isError();
    if (!failed && !info.isDescriptor) {
        if (FaultInjector *fi = eventq.faultInjector();
            fi && fi->shouldFault(FaultSite::DmaBeat))
            failed = true;
    }

    if (txnFailed) {
        // Already abandoning this transaction: just drain the window.
        --outstanding;
        maybeAbort();
        return;
    }

    if (failed) {
        ++statErrors;
        if (info.retries >= faultMaxRetries(eventq)) {
            ++statRetryExhausted;
            warn("%s: %s at bus addr %#llx still failing after %u "
                 "retries; failing the transaction",
                 name().c_str(),
                 info.isDescriptor ? "descriptor fetch" : "beat",
                 (unsigned long long)info.busAddr, info.retries);
            txnFailed = true;
            --outstanding;
            maybeAbort();
            return;
        }
        // Reissue after bounded exponential backoff. The beat keeps
        // its window slot through the backoff, so a burst of errors
        // cannot over-subscribe the bus.
        unsigned attempt = info.retries++;
        ++statRetries;
        scheduleCycles(
            static_cast<Cycles>(faultBackoffCycles(eventq, attempt)),
            [this, info] { reissue(info); }, "dma.retryBeat");
        return;
    }

    --outstanding;

    if (info.isDescriptor) {
        if (Tracer *t = eventq.tracer()) {
            t->end(descSpan);
            descSpan = invalidTraceSpan;
        }
        pump();
        return;
    }

    segCompleted += info.len;
    statBytes += info.len;
    if (current.onBeat)
        current.onBeat(info.arrayId, info.arrayOffset, info.len);

    const Segment &seg = current.segments[segIndex];
    if (segCompleted == seg.len)
        finishSegment();
    else
        pump();
}

void
DmaEngine::finishSegment()
{
    if (Tracer *t = eventq.tracer()) {
        t->end(chunkSpan);
        chunkSpan = invalidTraceSpan;
    }
    ++segIndex;
    if (segIndex < current.segments.size())
        beginSegment();
    else
        finishTransaction();
}

void
DmaEngine::reissue(BeatInfo info)
{
    if (txnFailed) {
        // The transaction died while this beat waited out its
        // backoff; release the window slot instead of re-sending.
        GENIE_ASSERT(outstanding > 0, "DMA outstanding underflow");
        --outstanding;
        maybeAbort();
        return;
    }
    std::uint64_t id = nextReqId++;
    Packet pkt;
    pkt.addr = info.busAddr;
    pkt.size = info.isDescriptor ? 16 : info.len;
    pkt.reqId = id;
    pkt.cmd = (info.isDescriptor ||
               current.dir == Direction::MemToAccel)
                  ? MemCmd::ReadShared
                  : MemCmd::WriteReq;
    inFlight.emplace(id, info);
    bus.sendRequest(busPort, pkt);
}

void
DmaEngine::maybeAbort()
{
    GENIE_ASSERT(txnFailed, "maybeAbort on a healthy transaction");
    if (outstanding > 0 || !inFlight.empty())
        return;
    // Close any open spans before abandoning the transaction.
    if (Tracer *t = eventq.tracer()) {
        if (descSpan != invalidTraceSpan) {
            t->end(descSpan);
            descSpan = invalidTraceSpan;
        }
        if (chunkSpan != invalidTraceSpan) {
            t->end(chunkSpan);
            chunkSpan = invalidTraceSpan;
        }
    }
    finishTransaction(/*ok=*/false);
}

void
DmaEngine::finishTransaction(bool ok)
{
    if (Tracer *t = eventq.tracer()) {
        t->end(txnSpan);
        txnSpan = invalidTraceSpan;
    }
    busy.add(txnStart, eventq.curTick());
    active = false;
    DoneCallback done = std::move(current.onDone);
    current = Transaction{};
    if (done)
        done(ok);
    // The done callback may itself have enqueued and started the next
    // transaction (startTransaction services an idle engine
    // immediately), so only kick the queue if it did not.
    if (!active)
        startNext();
}

} // namespace genie
