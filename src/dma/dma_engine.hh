/**
 * @file
 * The DMA engine (Section III-C).
 *
 * A software-managed bulk-transfer engine: the driver constructs a
 * chain of transfer descriptors (source, destination, length) and
 * writes the head pointer into the engine's control register. The
 * engine fetches descriptors from memory one by one and streams each
 * segment over the system bus in cache-line-sized beats, keeping a
 * bounded window of beats in flight to cover memory latency.
 *
 * Every transaction is charged a fixed 40-cycle setup delay (the
 * paper's characterized cost for metadata reads, the one-way CPU
 * initiation latency, and driver housekeeping). Per-beat completion
 * callbacks drive the full/empty ready bits for DMA-triggered compute;
 * transactions are serviced strictly in order, which models the
 * paper's "serial data arrival" effect.
 */

#ifndef GENIE_DMA_DMA_ENGINE_HH
#define GENIE_DMA_DMA_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/bus.hh"
#include "mem/packet.hh"
#include "sim/clocked.hh"
#include "sim/interval_set.hh"
#include "sim/sim_object.hh"
#include "trace/tracer.hh"

namespace genie
{

class DmaEngine : public SimObject, public BusClient, public Clocked
{
  public:
    struct Params
    {
        /** Beat (chunk) size; matches the cache-line granularity of
         * flushes and ready bits. */
        unsigned beatBytes = 64;
        /** Max in-flight beats (covers DRAM latency). */
        unsigned maxOutstanding = 8;
        /** Fixed per-transaction setup delay, in engine cycles. */
        Cycles setupCycles = 40;
        /** Charge one descriptor fetch (a memory read) per segment. */
        bool fetchDescriptors = true;
    };

    enum class Direction : std::uint8_t
    {
        MemToAccel, ///< dmaLoad
        AccelToMem, ///< dmaStore
    };

    /** One descriptor: a contiguous region of one accelerator array. */
    struct Segment
    {
        int arrayId = 0;
        /** Bus (simulated physical) address of the region. */
        Addr busAddr = 0;
        /** Offset of the region within the accelerator array. */
        Addr arrayOffset = 0;
        std::uint64_t len = 0;
    };

    /** Called as each beat lands in the accelerator's local memory. */
    using BeatCallback = std::function<void(int arrayId, Addr arrayOffset,
                                            unsigned len)>;
    /** Called when the transaction ends. @p ok is false when a beat
     * (or descriptor fetch) exhausted its retry budget and the
     * transaction was abandoned. */
    using DoneCallback = std::function<void(bool ok)>;

    DmaEngine(std::string name, EventQueue &eq, ClockDomain domain,
              SystemBus &bus, Params params);

    /**
     * Enqueue one DMA transaction (a descriptor chain). Transactions
     * are serviced in FIFO order, one at a time.
     */
    void startTransaction(Direction dir, std::vector<Segment> segments,
                          BeatCallback onBeat, DoneCallback onDone);

    bool idle() const { return !active && pending.empty(); }

    /** Intervals during which a transaction was in progress. */
    const IntervalSet &busyIntervals() const { return busy; }

    double bytesTransferred() const { return statBytes.value(); }

    /** Beats (and descriptor fetches) currently in flight — includes
     * errored beats waiting out their retry backoff (watchdog
     * diagnostic hook). */
    unsigned inFlightBeats() const { return outstanding; }

    // BusClient interface.
    void recvResponse(const Packet &pkt) override;

  private:
    struct Transaction
    {
        Direction dir;
        std::vector<Segment> segments;
        BeatCallback onBeat;
        DoneCallback onDone;
    };

    struct BeatInfo
    {
        int arrayId;
        Addr arrayOffset;
        unsigned len;
        bool isDescriptor;
        /** Bus address of the beat, kept for reissue after errors. */
        Addr busAddr = 0;
        /** Reissues performed after error responses. */
        unsigned retries = 0;
    };

    /** Begin the next queued transaction, if any. */
    void startNext();

    /** Fetch the descriptor for the current segment, then stream it. */
    void beginSegment();

    /** Issue beats while the outstanding window has room. */
    void pump();

    /** All beats of the segment done: advance to the next segment. */
    void finishSegment();

    void finishTransaction(bool ok = true);

    /** Re-send a beat that errored, after its backoff elapsed. */
    void reissue(BeatInfo info);

    /** If the failing transaction's window has drained, abandon it
     * and move on to the next queued transaction. */
    void maybeAbort();

    Params params;
    SystemBus &bus;
    BusPortId busPort = invalidBusPort;

    std::deque<Transaction> pending;
    bool active = false;
    Transaction current;
    std::size_t segIndex = 0;
    std::uint64_t segIssued = 0;   ///< bytes issued in current segment
    std::uint64_t segCompleted = 0;///< bytes completed in current segment
    unsigned outstanding = 0;
    Tick txnStart = 0;
    /** Current transaction exhausted a retry budget; it is draining
     * its window and will complete with ok=false. */
    bool txnFailed = false;

    // Open trace spans (invalid when tracing is off).
    TraceSpanId txnSpan = invalidTraceSpan;   ///< whole transaction
    TraceSpanId chunkSpan = invalidTraceSpan; ///< current segment burst
    TraceSpanId descSpan = invalidTraceSpan;  ///< descriptor fetch

    std::uint64_t nextReqId = 1;
    std::unordered_map<std::uint64_t, BeatInfo> inFlight;

    IntervalSet busy;

    Stat &statTransactions;
    Stat &statSegments;
    Stat &statBeats;
    Stat &statBytes;
    Stat &statDescriptorFetches;
    /** Beats observed failed (injected faults). */
    Stat &statErrors;
    /** Beats reissued after an error. */
    Stat &statRetries;
    /** Transactions failed after exhausting the retry budget. */
    Stat &statRetryExhausted;
};

} // namespace genie

#endif // GENIE_DMA_DMA_ENGINE_HH
