#include "flush_model.hh"

#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace genie
{

FlushEngine::FlushEngine(std::string name, EventQueue &eq, Params p)
    : SimObject(std::move(name)), params(p), eventq(eq),
      statLinesFlushed(stats().add("linesFlushed",
                                   "cache lines flushed")),
      statLinesInvalidated(stats().add("linesInvalidated",
                                       "cache lines invalidated"))
{
    if (params.lineBytes == 0)
        fatal("flush engine line size must be non-zero");
    eq.registerStats(stats());
}

Tick
FlushEngine::flushLatency(std::uint64_t bytes) const
{
    return divCeil(bytes, params.lineBytes) * params.flushPerLine;
}

Tick
FlushEngine::invalidateLatency(std::uint64_t bytes) const
{
    return divCeil(bytes, params.lineBytes) * params.invalidatePerLine;
}

std::size_t
FlushEngine::startFlush(std::uint64_t totalBytes,
                        std::uint64_t chunkBytes, ChunkCallback onChunk,
                        DoneCallback onDone)
{
    GENIE_ASSERT(chunkBytes > 0, "flush chunk size must be non-zero");
    std::size_t chunks =
        totalBytes == 0 ? 0 : static_cast<std::size_t>(
                                  divCeil(totalBytes, chunkBytes));
    Tick start = std::max(eventq.curTick(), freeAt);
    if (chunks == 0) {
        eventq.scheduleFlow(start, [onDone] {
            if (onDone)
                onDone();
        }, "flush.done");
        return 0;
    }

    active = true;
    Tracer *tracer = tracerFor(eventq, TraceCategory::Flush);
    Tick t = start;
    std::uint64_t remaining = totalBytes;
    for (std::size_t c = 0; c < chunks; ++c) {
        std::uint64_t bytes = std::min<std::uint64_t>(remaining,
                                                      chunkBytes);
        remaining -= bytes;
        std::uint64_t lines = divCeil(bytes, params.lineBytes);
        Tick chunkStart = t;
        t += lines * params.flushPerLine;
        if (tracer) {
            tracer->complete(TraceCategory::Flush, name(), "flush",
                             chunkStart, t);
        }
        statLinesFlushed += static_cast<double>(lines);
        bool last = c + 1 == chunks;
        eventq.scheduleFlow(t, [this, c, last, onChunk, onDone] {
            if (onChunk)
                onChunk(c);
            if (last) {
                active = false;
                if (onDone)
                    onDone();
            }
        }, "flush.chunk");
    }
    busy.add(start, t);
    freeAt = t;
    return chunks;
}

void
FlushEngine::startFlushChunks(
    const std::vector<std::uint64_t> &chunkBytes, ChunkCallback onChunk,
    DoneCallback onDone)
{
    Tick start = std::max(eventq.curTick(), freeAt);
    if (chunkBytes.empty()) {
        eventq.scheduleFlow(start, [onDone] {
            if (onDone)
                onDone();
        }, "flush.done");
        return;
    }
    active = true;
    Tracer *tracer = tracerFor(eventq, TraceCategory::Flush);
    Tick t = start;
    for (std::size_t c = 0; c < chunkBytes.size(); ++c) {
        std::uint64_t lines = divCeil(chunkBytes[c], params.lineBytes);
        Tick chunkStart = t;
        t += lines * params.flushPerLine;
        if (tracer) {
            tracer->complete(TraceCategory::Flush, name(), "flush",
                             chunkStart, t);
        }
        statLinesFlushed += static_cast<double>(lines);
        bool last = c + 1 == chunkBytes.size();
        eventq.scheduleFlow(t, [this, c, last, onChunk, onDone] {
            if (onChunk)
                onChunk(c);
            if (last) {
                active = false;
                if (onDone)
                    onDone();
            }
        }, "flush.chunk");
    }
    busy.add(start, t);
    freeAt = t;
}

void
FlushEngine::startInvalidate(std::uint64_t totalBytes,
                             DoneCallback onDone)
{
    Tick start = std::max(eventq.curTick(), freeAt);
    std::uint64_t lines = divCeil(totalBytes, params.lineBytes);
    statLinesInvalidated += static_cast<double>(lines);
    Tick end = start + lines * params.invalidatePerLine;
    if (Tracer *t = tracerFor(eventq, TraceCategory::Flush)) {
        t->complete(TraceCategory::Flush, name(), "invalidate", start,
                    end);
    }
    busy.add(start, end);
    freeAt = end;
    active = true;
    eventq.scheduleFlow(end, [this, onDone] {
        active = false;
        if (onDone)
            onDone();
    }, "flush.invalidate");
}

} // namespace genie
