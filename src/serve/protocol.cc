#include "protocol.hh"

#include "scope/json.hh"
#include "sim/logging.hh"

namespace genie
{

namespace
{

/** Same minimal escaping as jobJsonLine: protocol strings are plain
 * ASCII identifiers, error messages, and `key=value` pairs. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/**
 * Fill @p out from a parsed JSON object carrying job fields (the
 * submit request and the spool line share this shape). Returns false
 * with @p error set on type errors or a missing workload.
 */
bool
jobFromJson(const JsonValue &doc, JobDescriptor &out,
            std::string &error)
{
    const JsonValue *workload = doc.get("workload");
    if (!workload || !workload->isString() ||
        workload->string().empty()) {
        error = "submit requires a \"workload\" string";
        return false;
    }
    out.workload = workload->string();

    if (const JsonValue *id = doc.get("id")) {
        if (!id->isString()) {
            error = "\"id\" must be a string";
            return false;
        }
        out.id = id->string();
    }
    if (const JsonValue *space = doc.get("space")) {
        if (!space->isString() || space->string().empty()) {
            error = "\"space\" must be a non-empty string";
            return false;
        }
        out.space = space->string();
    }
    if (const JsonValue *filter = doc.get("filter")) {
        if (!filter->isString()) {
            error = "\"filter\" must be a string";
            return false;
        }
        out.filter = filter->string();
    }
    if (const JsonValue *config = doc.get("config")) {
        if (!config->isArray()) {
            error = "\"config\" must be an array of "
                    "\"key=value\" strings";
            return false;
        }
        for (const JsonValue &item : config->array()) {
            if (!item.isString()) {
                error = "\"config\" entries must be strings";
                return false;
            }
            out.config.push_back(item.string());
        }
    }
    if (const JsonValue *threads = doc.get("threads")) {
        if (!threads->isNumber() || threads->number() < 0 ||
            threads->number() > 256) {
            error = "\"threads\" must be a number in [0, 256]";
            return false;
        }
        out.threads = static_cast<unsigned>(threads->number());
    }
    return true;
}

} // namespace

const char *
serveSchemaName()
{
    return "genie-serve-1";
}

std::string
serveGreetingLine()
{
    return format("{\"schema\": \"%s\"}\n", serveSchemaName());
}

ServeRequest
parseServeRequest(const std::string &line)
{
    ServeRequest req;
    JsonParseResult parsed = parseJson(line);
    if (!parsed.ok) {
        req.error = format("malformed request: %s (column %zu)",
                           parsed.error.c_str(), parsed.errorColumn);
        return req;
    }
    if (!parsed.value.isObject()) {
        req.error = "request must be a JSON object";
        return req;
    }
    const JsonValue *op = parsed.value.get("op");
    if (!op || !op->isString()) {
        req.error = "request requires an \"op\" string";
        return req;
    }
    const std::string &name = op->string();
    if (name == "ping") {
        req.op = ServeOp::Ping;
    } else if (name == "submit") {
        if (!jobFromJson(parsed.value, req.job, req.error))
            return req;
        req.op = ServeOp::Submit;
    } else if (name == "status" || name == "wait" ||
               name == "results") {
        const JsonValue *job = parsed.value.get("job");
        if (!job || !job->isString() || job->string().empty()) {
            req.error =
                format("\"%s\" requires a \"job\" id", name.c_str());
            return req;
        }
        req.jobId = job->string();
        req.op = name == "status"  ? ServeOp::Status
                 : name == "wait"  ? ServeOp::Wait
                                   : ServeOp::Results;
    } else if (name == "stats") {
        req.op = ServeOp::Stats;
    } else if (name == "drain") {
        req.op = ServeOp::Drain;
    } else {
        req.error = format("unknown op \"%s\"", name.c_str());
    }
    return req;
}

bool
parseJobLine(const std::string &line, JobDescriptor &out,
             std::string &error)
{
    JsonParseResult parsed = parseJson(line);
    if (!parsed.ok) {
        error = format("malformed job line: %s", parsed.error.c_str());
        return false;
    }
    if (!parsed.value.isObject()) {
        error = "job line must be a JSON object";
        return false;
    }
    const JsonValue *schema = parsed.value.get("schema");
    if (!schema || !schema->isString() ||
        schema->string() != "genie-serve-job-1") {
        error = "job line lacks the genie-serve-job-1 schema";
        return false;
    }
    JobDescriptor desc;
    if (!jobFromJson(parsed.value, desc, error))
        return false;
    out = desc;
    return true;
}

const char *
serveJobStateName(ServeJobState state)
{
    switch (state) {
      case ServeJobState::Queued:
        return "queued";
      case ServeJobState::Running:
        return "running";
      case ServeJobState::Done:
        return "done";
      case ServeJobState::Failed:
        return "failed";
      case ServeJobState::Quarantined:
        return "quarantined";
    }
    return "unknown";
}

bool
serveJobStateTerminal(ServeJobState state)
{
    return state == ServeJobState::Done ||
           state == ServeJobState::Failed ||
           state == ServeJobState::Quarantined;
}

std::string
serveOkLine()
{
    return "{\"ok\": true}\n";
}

std::string
serveErrorLine(const std::string &error)
{
    return format("{\"ok\": false, \"error\": \"%s\"}\n",
                  jsonEscape(error).c_str());
}

std::string
serveSubmittedLine(const std::string &jobId)
{
    return format("{\"ok\": true, \"job\": \"%s\"}\n",
                  jsonEscape(jobId).c_str());
}

std::string
serveStatusLine(const std::string &jobId, ServeJobState state,
                unsigned attempts, const std::string &error)
{
    std::string s =
        format("{\"ok\": true, \"job\": \"%s\", \"state\": \"%s\", "
               "\"attempts\": %u",
               jsonEscape(jobId).c_str(), serveJobStateName(state),
               attempts);
    if (!error.empty())
        s += format(", \"error\": \"%s\"", jsonEscape(error).c_str());
    s += "}\n";
    return s;
}

std::string
serveResultsLine(std::uint64_t bytes)
{
    return format("{\"ok\": true, \"bytes\": %llu}\n",
                  static_cast<unsigned long long>(bytes));
}

std::string
serveSubmitLine(const JobDescriptor &job)
{
    // Same field shapes as jobJsonLine, with the op in place of the
    // spool schema tag.
    std::string s = format("{\"op\": \"submit\", \"workload\": "
                           "\"%s\", \"space\": \"%s\"",
                           jsonEscape(job.workload).c_str(),
                           jsonEscape(job.space).c_str());
    if (!job.filter.empty()) {
        s += format(", \"filter\": \"%s\"",
                    jsonEscape(job.filter).c_str());
    }
    if (!job.config.empty()) {
        s += ", \"config\": [";
        for (std::size_t i = 0; i < job.config.size(); ++i) {
            s += format("%s\"%s\"", i ? ", " : "",
                        jsonEscape(job.config[i]).c_str());
        }
        s += "]";
    }
    s += format(", \"threads\": %u}\n", job.threads);
    return s;
}

std::string
serveJobOpLine(const char *op, const std::string &jobId)
{
    return format("{\"op\": \"%s\", \"job\": \"%s\"}\n", op,
                  jsonEscape(jobId).c_str());
}

std::string
serveSimpleOpLine(const char *op)
{
    return format("{\"op\": \"%s\"}\n", op);
}

} // namespace genie
