/**
 * @file
 * The genie_serve worker: one forked attempt at one job.
 *
 * The daemon execs `genie_serve --worker --job=... --out=... ...`
 * for every attempt; this module is what runs on the other side of
 * that exec. The worker reads the spooled `genie-serve-job-1`
 * descriptor, runs the sweep through the same SweepEngine/runJob
 * path genie_sweep uses (so served results are byte-identical to CLI
 * results), writes the `genie-sweep-results-1` document durably to
 * the .out path, and reports its fate through the exit-code contract
 * below. Completed points are written through the shared ResultStore
 * as they finish, so even a SIGKILLed attempt leaves its finished
 * work durable — the retry re-simulates only the remainder.
 *
 * Exit-code contract (the daemon's retry policy keys off this):
 *
 *   0  results written; job done
 *   1  deterministic simulation failure — do not retry
 *   2  user/config error (bad job file, unknown workload) — do not
 *      retry
 *   6  interrupted: SIGTERM arrived, the sweep checkpointed, no
 *      results written — retry resumes from the store
 *   signal-death (no exit code): crash — retry
 */

#ifndef GENIE_SERVE_WORKER_HH
#define GENIE_SERVE_WORKER_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "sim/thread_safety.hh"

namespace genie
{

// The contract's named constants.
constexpr int serveWorkerDone = 0;
constexpr int serveWorkerSimFailure = 1;
constexpr int serveWorkerUserError = 2;
constexpr int serveWorkerInterrupted = 6;

struct ServeWorkerArgs GENIE_THREAD_LOCAL_OK
{
    std::string jobPath;  ///< spooled genie-serve-job-1 descriptor
    std::string outPath;  ///< where the results document lands
    std::string errPath;  ///< one-line failure diagnostics
    std::string storeDir; ///< shared ResultStore ("" = none)
    std::uint64_t storeBudgetBytes = 0;
    /** Wired to the tool's SIGTERM handler: checkpoint and exit 6. */
    const std::atomic<bool> *stopRequested = nullptr;
};

/** Run one worker attempt; returns the process exit code per the
 * contract above. Never throws. */
int runServeWorker(const ServeWorkerArgs &args);

} // namespace genie

#endif // GENIE_SERVE_WORKER_HH
