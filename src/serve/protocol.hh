/**
 * @file
 * The `genie-serve-1` wire protocol.
 *
 * genie_serve speaks line-delimited JSON over a Unix-domain stream
 * socket: each request is one JSON object on one line, each response
 * is one JSON object on one line (the `results` op additionally
 * streams the raw results document after its framing line). The
 * daemon greets every connection with a schema line so clients can
 * verify they dialed a genie_serve socket before sending anything.
 *
 * Requests
 *
 *   {"op": "ping"}
 *   {"op": "submit", "workload": "gemm", "space": "dma",
 *    "filter": "...", "config": ["lanes=4", ...], "threads": 2}
 *   {"op": "status", "job": "j-000001"}
 *   {"op": "wait",   "job": "j-000001"}   (response deferred until
 *                                          the job is terminal)
 *   {"op": "results","job": "j-000001"}
 *   {"op": "stats"}
 *   {"op": "drain"}
 *
 * Responses
 *
 *   {"ok": true, ...}                       success
 *   {"ok": false, "error": "..."}           failure (incl. "busy"
 *                                           backpressure and
 *                                           "draining" refusals)
 *
 * The job spool uses the sibling `genie-serve-job-1` schema (see
 * jobJsonLine in dse/job.hh); parseJobLine below reads it back.
 * Parsing reuses the Genie-Scope JSON reader, so the daemon accepts
 * exactly RFC 8259 documents and rejects everything else with a
 * position-annotated error instead of guessing.
 */

#ifndef GENIE_SERVE_PROTOCOL_HH
#define GENIE_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "dse/job.hh"
#include "sim/thread_safety.hh"

namespace genie
{

/** Protocol schema tag, also the greeting line's schema value. */
const char *serveSchemaName();

/** The greeting line the daemon writes on every new connection. */
std::string serveGreetingLine();

/** Every operation a client can request. */
enum class ServeOp : std::uint8_t
{
    Invalid, ///< unparseable or unknown; see ServeRequest::error
    Ping,
    Submit,
    Status,
    Wait,
    Results,
    Stats,
    Drain,
};

/** One parsed request line. */
struct ServeRequest GENIE_THREAD_LOCAL_OK
{
    ServeOp op = ServeOp::Invalid;
    JobDescriptor job; ///< submit payload (id unset by clients)
    std::string jobId; ///< status/wait/results target
    std::string error; ///< parse diagnostics when op == Invalid
};

/** Parse one request line; never throws. Malformed input yields
 * op == Invalid with a human-readable error. */
ServeRequest parseServeRequest(const std::string &line);

/**
 * Parse one `genie-serve-job-1` spool line (the jobJsonLine format)
 * back into a descriptor. Returns false with @p error set on any
 * malformed input; never throws.
 */
bool parseJobLine(const std::string &line, JobDescriptor &out,
                  std::string &error);

/** The daemon's view of a job's lifecycle. */
enum class ServeJobState : std::uint8_t
{
    Queued,      ///< waiting for a worker (includes retry backoff)
    Running,     ///< a worker process is simulating it
    Done,        ///< results available
    Failed,      ///< deterministic failure; will not retry
    Quarantined, ///< poison job: crashed/timed out maxAttempts times
};

const char *serveJobStateName(ServeJobState state);

/** True for states that will never change again. */
bool serveJobStateTerminal(ServeJobState state);

// Response builders. Every response is a single line ending in \n.
std::string serveOkLine();
std::string serveErrorLine(const std::string &error);
std::string serveSubmittedLine(const std::string &jobId);
std::string serveStatusLine(const std::string &jobId,
                            ServeJobState state, unsigned attempts,
                            const std::string &error);
/** Framing line preceding @p bytes bytes of raw results payload. */
std::string serveResultsLine(std::uint64_t bytes);

// Request builders (the genie_submit client side).
std::string serveSubmitLine(const JobDescriptor &job);
/** For ops that target a job: "status", "wait", "results". */
std::string serveJobOpLine(const char *op, const std::string &jobId);
/** For argument-free ops: "ping", "stats", "drain". */
std::string serveSimpleOpLine(const char *op);

} // namespace genie

#endif // GENIE_SERVE_PROTOCOL_HH
