#include "worker.hh"

#include <exception>
#include <fstream>
#include <sstream>

#include "dse/journal.hh"
#include "dse/result_store.hh"
#include "dse/sweep_engine.hh"
#include "serve/protocol.hh"
#include "sim/logging.hh"

namespace genie
{

namespace
{

/** Leave a one-line diagnostic for the daemon to surface. */
void
reportError(const std::string &errPath, const std::string &message)
{
    if (!errPath.empty())
        writeFileDurably(errPath, message + "\n");
    warn("genie_serve worker: %s", message.c_str());
}

} // namespace

int
runServeWorker(const ServeWorkerArgs &args)
{
    JobDescriptor desc;
    {
        std::ifstream in(args.jobPath);
        std::string line;
        if (!in || !std::getline(in, line)) {
            reportError(args.errPath,
                        "cannot read job file " + args.jobPath);
            return serveWorkerUserError;
        }
        std::string error;
        if (!parseJobLine(line, desc, error)) {
            reportError(args.errPath, error);
            return serveWorkerUserError;
        }
    }

    try {
        // The store is both the crash-durability mechanism (each
        // completed point lands before the next starts) and the
        // retry accelerator (a re-run of a killed attempt replays
        // its finished points as store hits).
        ResultStore store;
        SweepOptions sweepOpts;
        sweepOpts.threads = desc.threads;
        sweepOpts.stopRequested = args.stopRequested;
        if (!args.storeDir.empty()) {
            store.open(args.storeDir, args.storeBudgetBytes);
            sweepOpts.store = &store;
        }
        SweepEngine engine(std::move(sweepOpts));
        std::vector<DesignPoint> points = runJob(desc, engine);
        if (engine.interrupted()) {
            reportError(args.errPath,
                        "interrupted: checkpointed to the store");
            return serveWorkerInterrupted;
        }
        std::ostringstream out;
        writeSweepResultsJson(out, points, desc.workload);
        if (!writeFileDurably(args.outPath, out.str())) {
            reportError(args.errPath,
                        "cannot write results to " + args.outPath);
            return serveWorkerSimFailure;
        }
        return serveWorkerDone;
    } catch (const FatalError &e) {
        reportError(args.errPath, e.what());
        return serveWorkerUserError;
    } catch (const SweepError &e) {
        reportError(args.errPath, e.what());
        return serveWorkerSimFailure;
    } catch (const std::exception &e) {
        reportError(args.errPath, e.what());
        return serveWorkerSimFailure;
    }
}

} // namespace genie
