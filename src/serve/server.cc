#include "server.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <poll.h>
#include <signal.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dse/result_store.hh"
#include "metrics/profiler.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace fs = std::filesystem;

namespace genie
{

namespace
{

constexpr std::uint64_t nsPerMs = 1000000ull;

/** Worker exit codes the daemon's retry policy keys off (see
 * serve/worker.hh for the worker side of the contract). */
constexpr int exitUserError = 2;
constexpr int exitInterrupted = 6;

std::string
readSmallFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** First line of a worker's .err file, for terminal diagnostics. */
std::string
firstLineOf(const std::string &text)
{
    std::size_t nl = text.find('\n');
    return nl == std::string::npos ? text : text.substr(0, nl);
}

/**
 * Submit-time validation: reject jobs the worker could only fail
 * deterministically on, so a typo'd workload name is an error reply,
 * not a spooled job that burns a worker attempt to learn the same.
 */
std::string
validateJob(const JobDescriptor &desc)
{
    const auto names = workloadNames();
    if (std::find(names.begin(), names.end(), desc.workload) ==
        names.end()) {
        return format("unknown workload \"%s\"",
                      desc.workload.c_str());
    }
    try {
        jobConfigs(desc);
    } catch (const FatalError &e) {
        return e.what();
    }
    return "";
}

} // namespace

Server::Server(ServeOptions options) : opts(std::move(options)) {}

Server::~Server()
{
    for (auto &[fd, client] : clients)
        ::close(fd);
    if (listenFd >= 0) {
        ::close(listenFd);
        ::unlink(opts.socketPath.c_str());
    }
    // Leave running children alone: the daemon may be restarting, and
    // their durable store writes stay valid either way.
}

std::string
Server::spoolDir() const
{
    return opts.stateDir + "/spool";
}

std::string
Server::storeDir() const
{
    return opts.stateDir + "/store";
}

std::string
Server::jobPath(const std::string &id) const
{
    return spoolDir() + "/" + id + ".job";
}

std::string
Server::outPath(const std::string &id) const
{
    return spoolDir() + "/" + id + ".out";
}

std::string
Server::errPath(const std::string &id) const
{
    return spoolDir() + "/" + id + ".err";
}

void
Server::start()
{
    std::error_code ec;
    fs::create_directories(spoolDir(), ec);
    if (ec) {
        fatal("genie_serve: cannot create state directory %s: %s",
              spoolDir().c_str(), ec.message().c_str());
    }
    fs::create_directories(storeDir(), ec);
    recoverSpool();
    bindSocket();
}

void
Server::recoverSpool()
{
    // Crash recovery: every accepted job left a durable spool file.
    // A job whose .out exists finished before the crash; everything
    // else re-enqueues and re-runs — cheaply, because completed
    // points come back as ResultStore hits.
    std::error_code ec;
    std::vector<std::string> ids;
    for (const auto &entry : fs::directory_iterator(spoolDir(), ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        std::string name = entry.path().filename().string();
        if (name.size() <= 4 ||
            name.compare(name.size() - 4, 4, ".job") != 0)
            continue;
        ids.push_back(name.substr(0, name.size() - 4));
    }
    std::sort(ids.begin(), ids.end());
    for (const std::string &id : ids) {
        // Track the numbering high-water mark so restarted daemons
        // never reuse a live id.
        if (id.size() > 2 && id.compare(0, 2, "j-") == 0) {
            std::uint64_t n = std::strtoull(id.c_str() + 2, nullptr, 10);
            nextJobNumber = std::max(nextJobNumber, n + 1);
        }
        JobDescriptor desc;
        std::string error;
        std::string line = readSmallFile(jobPath(id));
        if (!parseJobLine(line, desc, error)) {
            warn("genie_serve: unreadable spool entry %s (%s); "
                 "skipping it",
                 jobPath(id).c_str(), error.c_str());
            continue;
        }
        desc.id = id;
        Job job;
        job.desc = desc;
        if (fs::exists(outPath(id), ec)) {
            job.state = ServeJobState::Done;
        } else {
            job.state = ServeJobState::Queued;
            queue.push_back(id);
            ++_counters.recovered;
        }
        jobs.emplace(id, std::move(job));
    }
    if (_counters.recovered > 0) {
        inform("genie_serve: recovered %llu unfinished job(s) from "
               "the spool",
               static_cast<unsigned long long>(_counters.recovered));
    }
}

void
Server::bindSocket()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts.socketPath.size() >= sizeof(addr.sun_path)) {
        fatal("genie_serve: socket path too long (%zu bytes, max "
              "%zu): %s",
              opts.socketPath.size(), sizeof(addr.sun_path) - 1,
              opts.socketPath.c_str());
    }
    std::memcpy(addr.sun_path, opts.socketPath.c_str(),
                opts.socketPath.size() + 1);
    ::unlink(opts.socketPath.c_str());
    listenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd < 0) {
        fatal("genie_serve: socket(): %s", std::strerror(errno));
    }
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        fatal("genie_serve: bind(%s): %s", opts.socketPath.c_str(),
              std::strerror(errno));
    }
    if (::listen(listenFd, 128) != 0)
        fatal("genie_serve: listen(): %s", std::strerror(errno));
}

int
Server::run()
{
    for (;;) {
        if (opts.drainFlag && opts.drainFlag->load() && !draining) {
            draining = true;
            inform("genie_serve: drain requested; finishing %u "
                   "running and %zu queued job(s)",
                   running, queue.size());
        }
        reapWorkers();
        enforceTimeouts();
        if (!draining)
            dispatch();
        if (draining && running == 0)
            return 0;

        std::vector<pollfd> fds;
        fds.push_back({listenFd, POLLIN, 0});
        for (const auto &[fd, client] : clients)
            fds.push_back({fd, POLLIN, 0});
        // A short tick bounds how stale the timeout/backoff/reap
        // checks can get; poll() wakes earlier for any IO.
        int rc = ::poll(fds.data(), fds.size(), 50);
        if (rc < 0 && errno != EINTR) {
            warn("genie_serve: poll(): %s", std::strerror(errno));
        }
        if (rc <= 0)
            continue;
        if (fds[0].revents & POLLIN)
            acceptClient();
        for (std::size_t i = 1; i < fds.size(); ++i) {
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
                readClient(fds[i].fd);
        }
    }
}

void
Server::acceptClient()
{
    int fd = ::accept4(listenFd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0)
        return;
    clients.emplace(fd, Client{});
    sendLine(fd, serveGreetingLine());
}

void
Server::closeClient(int fd)
{
    // A vanished client must not strand a wait registration.
    for (auto &[id, job] : jobs) {
        job.waiters.erase(std::remove(job.waiters.begin(),
                                      job.waiters.end(), fd),
                          job.waiters.end());
    }
    clients.erase(fd);
    ::close(fd);
}

void
Server::readClient(int fd)
{
    auto it = clients.find(fd);
    if (it == clients.end())
        return;
    char buf[4096];
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
        if (n < 0 && (errno == EAGAIN || errno == EINTR))
            return;
        closeClient(fd);
        return;
    }
    it->second.inbuf.append(buf, static_cast<std::size_t>(n));
    std::string &inbuf = it->second.inbuf;
    std::size_t start = 0;
    for (;;) {
        std::size_t nl = inbuf.find('\n', start);
        if (nl == std::string::npos)
            break;
        std::string line = inbuf.substr(start, nl - start);
        start = nl + 1;
        if (!line.empty())
            handleLine(fd, line);
        // handleLine may have closed the client (write failure).
        if (clients.find(fd) == clients.end())
            return;
    }
    inbuf.erase(0, start);
}

void
Server::sendLine(int fd, const std::string &line)
{
    std::size_t off = 0;
    while (off < line.size()) {
        // MSG_NOSIGNAL: a client that hung up yields EPIPE, not a
        // process-killing SIGPIPE.
        ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            closeClient(fd);
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

void
Server::handleLine(int fd, const std::string &line)
{
    ServeRequest req = parseServeRequest(line);
    switch (req.op) {
      case ServeOp::Invalid:
        sendLine(fd, serveErrorLine(req.error));
        return;
      case ServeOp::Ping:
        sendLine(fd, format("{\"ok\": true, \"schema\": \"%s\"}\n",
                            serveSchemaName()));
        return;
      case ServeOp::Submit:
        handleSubmit(fd, req.job);
        return;
      case ServeOp::Stats:
        sendLine(fd, statsLine());
        return;
      case ServeOp::Drain:
        draining = true;
        sendLine(fd, serveOkLine());
        return;
      case ServeOp::Status:
      case ServeOp::Wait:
      case ServeOp::Results:
        break;
    }

    auto it = jobs.find(req.jobId);
    if (it == jobs.end()) {
        sendLine(fd, serveErrorLine(
                         format("unknown job \"%s\"",
                                req.jobId.c_str())));
        return;
    }
    Job &job = it->second;
    if (req.op == ServeOp::Status) {
        sendLine(fd, serveStatusLine(req.jobId, job.state,
                                     job.attempts, job.error));
        return;
    }
    if (req.op == ServeOp::Wait) {
        if (serveJobStateTerminal(job.state)) {
            sendLine(fd, serveStatusLine(req.jobId, job.state,
                                         job.attempts, job.error));
        } else {
            job.waiters.push_back(fd); // answered on completion
        }
        return;
    }
    // results
    if (job.state != ServeJobState::Done) {
        sendLine(fd, serveErrorLine(format(
                         "job \"%s\" has no results (state: %s)",
                         req.jobId.c_str(),
                         serveJobStateName(job.state))));
        return;
    }
    std::string payload = readSmallFile(outPath(req.jobId));
    if (payload.empty()) {
        sendLine(fd, serveErrorLine(format(
                         "results file for \"%s\" is missing",
                         req.jobId.c_str())));
        return;
    }
    sendLine(fd, serveResultsLine(payload.size()));
    if (clients.find(fd) != clients.end())
        sendLine(fd, payload);
}

void
Server::handleSubmit(int fd, const JobDescriptor &desc)
{
    if (draining) {
        sendLine(fd, serveErrorLine("draining"));
        return;
    }
    if (queue.size() >= opts.maxQueue) {
        // Backpressure, not buffering: refuse loudly so the client
        // retries, instead of queueing without bound.
        ++_counters.busy;
        sendLine(fd, serveErrorLine("busy"));
        return;
    }
    std::string invalid = validateJob(desc);
    if (!invalid.empty()) {
        sendLine(fd, serveErrorLine(invalid));
        return;
    }

    std::string id = format("j-%06llu",
                            static_cast<unsigned long long>(
                                nextJobNumber++));
    Job job;
    job.desc = desc;
    job.desc.id = id;
    // The durable spool write happens *before* the acknowledgement:
    // once a client sees the job id, the job survives any daemon
    // crash.
    if (!writeFileDurably(jobPath(id), jobJsonLine(job.desc))) {
        sendLine(fd, serveErrorLine("cannot spool job"));
        return;
    }
    jobs.emplace(id, std::move(job));
    queue.push_back(id);
    ++_counters.submitted;
    sendLine(fd, serveSubmittedLine(id));
}

void
Server::notifyWaiters(Job &job)
{
    std::vector<int> waiters;
    waiters.swap(job.waiters);
    for (int fd : waiters) {
        if (clients.find(fd) == clients.end())
            continue;
        sendLine(fd, serveStatusLine(job.desc.id, job.state,
                                     job.attempts, job.error));
    }
}

void
Server::dispatch()
{
    const std::uint64_t now = profilerNowNs();
    while (running < opts.workers) {
        // Take the first queue entry whose backoff has elapsed;
        // entries still cooling down keep their position.
        auto pick = queue.end();
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            auto jit = jobs.find(*it);
            if (jit == jobs.end()) {
                pick = it; // stale id; drop below
                break;
            }
            if (jit->second.readyNs <= now) {
                pick = it;
                break;
            }
        }
        if (pick == queue.end())
            return;
        std::string id = *pick;
        queue.erase(pick);
        auto jit = jobs.find(id);
        if (jit == jobs.end())
            continue;
        spawn(jit->second);
    }
}

void
Server::spawn(Job &job)
{
    const std::string &id = job.desc.id;
    job.timedOut = false;
    job.termSent = false;
    job.killSent = false;
    ++job.attempts;

    // Build the argv before forking: only async-signal-safe calls
    // are allowed between fork and exec.
    std::vector<std::string> argv;
    if (!opts.workerCommand.empty()) {
        argv = {"/bin/sh", "-c", opts.workerCommand};
    } else {
        argv = {opts.selfExe,
                "--worker",
                "--job=" + jobPath(id),
                "--out=" + outPath(id),
                "--err=" + errPath(id),
                "--store=" + storeDir()};
        if (opts.storeBudgetBytes > 0) {
            argv.push_back(format(
                "--store-budget=%llu",
                static_cast<unsigned long long>(
                    opts.storeBudgetBytes)));
        }
    }
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (std::string &arg : argv)
        cargv.push_back(arg.data());
    cargv.push_back(nullptr);

    int pid = ::fork();
    if (pid < 0) {
        // Treat a failed fork like a crashed attempt: back off and
        // retry; the host may just be momentarily out of processes.
        warn("genie_serve: fork(): %s", std::strerror(errno));
        attemptFinished(job, 0x7f00 /* exit 127 */);
        return;
    }
    if (pid == 0) {
        ::execv(cargv[0], cargv.data());
        _exit(127);
    }
    job.pid = pid;
    job.state = ServeJobState::Running;
    const std::uint64_t now = profilerNowNs();
    job.deadlineNs =
        opts.timeoutMs > 0 ? now + opts.timeoutMs * nsPerMs : 0;
    job.killNs = 0;
    ++running;
}

void
Server::enforceTimeouts()
{
    const std::uint64_t now = profilerNowNs();
    for (auto &[id, job] : jobs) {
        if (job.state != ServeJobState::Running || job.pid < 0)
            continue;
        if (job.deadlineNs > 0 && now >= job.deadlineNs &&
            !job.termSent) {
            // Escalation step 1: SIGTERM. The real worker treats it
            // as a drain request and exits with its checkpoint
            // written; only a wedged worker needs step 2.
            warn("genie_serve: job %s exceeded %llu ms; sending "
                 "SIGTERM",
                 id.c_str(),
                 static_cast<unsigned long long>(opts.timeoutMs));
            ::kill(job.pid, SIGTERM);
            job.termSent = true;
            job.timedOut = true;
            job.killNs = now + opts.termGraceMs * nsPerMs;
            ++_counters.timeouts;
        } else if (job.termSent && !job.killSent &&
                   now >= job.killNs) {
            warn("genie_serve: job %s ignored SIGTERM for %llu ms; "
                 "escalating to SIGKILL",
                 id.c_str(),
                 static_cast<unsigned long long>(opts.termGraceMs));
            ::kill(job.pid, SIGKILL);
            job.killSent = true;
        }
    }
}

void
Server::reapWorkers()
{
    for (auto &[id, job] : jobs) {
        if (job.state != ServeJobState::Running || job.pid < 0)
            continue;
        int status = 0;
        int rc = ::waitpid(job.pid, &status, WNOHANG);
        if (rc == job.pid) {
            attemptFinished(job, status);
        } else if (rc < 0 && errno == ECHILD) {
            // Should not happen (we only wait on our own forks), but
            // never leave a job wedged in Running if it does.
            attemptFinished(job, 0x7f00);
        }
    }
}

void
Server::attemptFinished(Job &job, int status)
{
    const std::string &id = job.desc.id;
    if (job.pid >= 0) {
        job.pid = -1;
        if (running > 0)
            --running;
    }

    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        job.state = ServeJobState::Done;
        job.error.clear();
        ++_counters.completed;
        inform("genie_serve: job %s done (attempt %u)", id.c_str(),
               job.attempts);
        notifyWaiters(job);
        return;
    }

    // Diagnose the failed attempt and decide: retry or terminal?
    std::string why;
    bool retryable = false;
    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        ++_counters.crashes;
        retryable = true;
        if (job.timedOut && sig == SIGKILL) {
            why = "timeout: SIGTERM ignored, escalated to SIGKILL";
        } else if (job.timedOut) {
            why = format("timeout: killed by signal %d", sig);
        } else {
            why = format("worker crashed: signal %d", sig);
        }
    } else {
        int code = WIFEXITED(status) ? WEXITSTATUS(status) : 127;
        std::string detail =
            firstLineOf(readSmallFile(errPath(id)));
        if (code == exitUserError) {
            why = detail.empty()
                      ? "worker reported a configuration error"
                      : detail;
            retryable = false;
        } else if (code == exitInterrupted) {
            // The worker checkpointed and exited on SIGTERM; its
            // completed points are in the store, so the retry only
            // simulates the remainder.
            why = job.timedOut ? "timeout: worker checkpointed"
                               : "worker interrupted";
            retryable = true;
        } else {
            why = detail.empty()
                      ? format("worker exited with code %d", code)
                      : detail;
            // Deterministic failure: retrying replays it. Exit 127
            // (exec failed / fork failed marker) is host trouble and
            // retryable.
            retryable = code == 127;
        }
    }

    if (retryable && job.attempts < opts.maxAttempts) {
        const std::uint64_t backoff =
            (opts.backoffMs * nsPerMs) << (job.attempts - 1);
        job.state = ServeJobState::Queued;
        job.readyNs = profilerNowNs() + backoff;
        job.error = why;
        queue.push_back(id);
        ++_counters.retries;
        warn("genie_serve: job %s attempt %u failed (%s); retrying "
             "in %llu ms",
             id.c_str(), job.attempts, why.c_str(),
             static_cast<unsigned long long>(backoff / nsPerMs));
        return;
    }

    if (retryable) {
        // Poison job: it has crashed or timed out on every attempt.
        // Quarantine it so it can never wedge the queue, and keep
        // serving everything else.
        job.state = ServeJobState::Quarantined;
        job.error = format("quarantined after %u attempts; last: %s",
                           job.attempts, why.c_str());
        ++_counters.quarantined;
        warn("genie_serve: job %s %s", id.c_str(), job.error.c_str());
    } else {
        job.state = ServeJobState::Failed;
        job.error = why;
        ++_counters.failed;
        warn("genie_serve: job %s failed: %s", id.c_str(),
             why.c_str());
    }
    notifyWaiters(job);
}

std::string
Server::statsLine() const
{
    unsigned queued = static_cast<unsigned>(queue.size());
    return format(
        "{\"ok\": true, \"schema\": \"%s\", \"workers\": %u, "
        "\"running\": %u, \"queued\": %u, \"draining\": %s, "
        "\"submitted\": %llu, \"recovered\": %llu, "
        "\"completed\": %llu, \"failed\": %llu, "
        "\"quarantined\": %llu, \"crashes\": %llu, "
        "\"timeouts\": %llu, \"retries\": %llu, \"busy\": %llu}\n",
        serveSchemaName(), opts.workers, running, queued,
        draining ? "true" : "false",
        static_cast<unsigned long long>(_counters.submitted),
        static_cast<unsigned long long>(_counters.recovered),
        static_cast<unsigned long long>(_counters.completed),
        static_cast<unsigned long long>(_counters.failed),
        static_cast<unsigned long long>(_counters.quarantined),
        static_cast<unsigned long long>(_counters.crashes),
        static_cast<unsigned long long>(_counters.timeouts),
        static_cast<unsigned long long>(_counters.retries),
        static_cast<unsigned long long>(_counters.busy));
}

} // namespace genie
