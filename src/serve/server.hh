/**
 * @file
 * The genie_serve daemon: a crash-tolerant simulation service.
 *
 * The server owns a Unix-domain listening socket and a pool of worker
 * *subprocesses* (not threads): every job runs in its own forked
 * process, so a simulator crash — segfault, abort, OOM kill — takes
 * down one attempt of one job, never the daemon. The daemon itself is
 * a single-threaded poll() event loop; there is no shared mutable
 * state between concurrent requests, no signal handler in the
 * library (children are reaped with per-pid waitpid(WNOHANG) each
 * tick), and every timer reads the one sanctioned host clock
 * (profilerNowNs), which keeps the loop trivially TSan-clean and
 * deterministic to test.
 *
 * Fault handling, in order of escalation:
 *
 *  - worker exceeds its wall-clock budget: SIGTERM (the worker
 *    checkpoints via SweepOptions::stopRequested), then after a grace
 *    period SIGKILL — the escalation a stuck simulation cannot block;
 *  - worker dies by signal or times out: the attempt is retried with
 *    exponential backoff (backoffMs << attempt), up to maxAttempts;
 *  - a job that exhausts its attempts is *quarantined* — marked
 *    poison and never scheduled again, so one bad config cannot wedge
 *    the queue — while everything else keeps flowing;
 *  - a worker exiting 2 (user/config error) or 1 (deterministic
 *    simulation failure) fails immediately: retrying a deterministic
 *    failure would burn maxAttempts to learn nothing.
 *
 * Admission control: the queue is bounded (maxQueue); a submit that
 * would exceed it is refused with "busy" instead of growing without
 * bound — the client retries, and every job the daemon *did* accept
 * is preserved.
 *
 * Durability: accepted jobs are spooled to disk (one durable
 * `genie-serve-job-1` file each) before the submit is acknowledged,
 * and workers write results through the shared ResultStore. Kill the
 * daemon at any instant and restart it: spooled jobs without results
 * re-enqueue, jobs whose results file exists surface as done, and
 * re-run points come back as store hits — the end-to-end contract the
 * serve-smoke CI job proves byte-identical against plain genie_sweep.
 *
 * Shutdown: SIGTERM/SIGINT set ServeOptions::drainFlag (from the
 * tool's signal handler); the loop stops accepting submissions,
 * finishes or checkpoints what is running, and run() returns 0.
 */

#ifndef GENIE_SERVE_SERVER_HH
#define GENIE_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "sim/thread_safety.hh"

namespace genie
{

struct ServeOptions GENIE_THREAD_LOCAL_OK
{
    /** Unix-domain socket path (must fit sockaddr_un). */
    std::string socketPath;
    /** State directory: spool/ for jobs, store/ for results. */
    std::string stateDir;
    /** Worker subprocesses running concurrently. */
    unsigned workers = 2;
    /** Queued-job bound; submits beyond it get "busy". */
    std::size_t maxQueue = 64;
    /** Spawn attempts before a job is quarantined as poison. */
    unsigned maxAttempts = 3;
    /** Per-attempt wall-clock budget in milliseconds (0 = none). */
    std::uint64_t timeoutMs = 0;
    /** SIGTERM-to-SIGKILL escalation grace in milliseconds. */
    std::uint64_t termGraceMs = 2000;
    /** Retry backoff base; attempt n waits backoffMs << (n-1). */
    std::uint64_t backoffMs = 200;
    /** Byte budget handed to each worker's ResultStore (0 = none). */
    std::uint64_t storeBudgetBytes = 0;
    /** argv[0] to exec for workers (the genie_serve binary). */
    std::string selfExe;
    /**
     * Test hook: when non-empty, workers run `/bin/sh -c <cmd>`
     * instead of the real simulation. Crash/timeout/retry paths are
     * exercised with commands like `kill -9 $$` without simulating.
     */
    std::string workerCommand;
    /** Set by the tool's SIGTERM/SIGINT handler: drain and exit. */
    const std::atomic<bool> *drainFlag = nullptr;
};

/** Daemon-lifetime counters, reported by the `stats` op. */
struct ServeCounters GENIE_THREAD_LOCAL_OK
{
    std::uint64_t submitted = 0;   ///< jobs accepted
    std::uint64_t recovered = 0;   ///< jobs re-enqueued from spool
    std::uint64_t completed = 0;   ///< jobs finished with results
    std::uint64_t failed = 0;      ///< deterministic failures
    std::uint64_t quarantined = 0; ///< poison jobs
    std::uint64_t crashes = 0;     ///< attempts ended by a signal
    std::uint64_t timeouts = 0;    ///< attempts that hit the budget
    std::uint64_t retries = 0;     ///< attempts re-enqueued
    std::uint64_t busy = 0;        ///< submits refused by backpressure
};

class Server
{
  public:
    explicit Server(ServeOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Create the state directories, recover the spool, and bind the
     * socket. fatal() when the socket or state dir cannot be set up.
     */
    void start();

    /** Event loop; returns 0 after a clean drain. */
    int run();

    const ServeCounters &counters() const { return _counters; }

    /** Jobs currently queued (including backoff waits). */
    std::size_t queueDepth() const { return queue.size(); }

    std::string spoolDir() const;
    std::string storeDir() const;

  private:
    struct Job
    {
        JobDescriptor desc;
        ServeJobState state = ServeJobState::Queued;
        unsigned attempts = 0;
        int pid = -1;
        std::uint64_t deadlineNs = 0; ///< timeout trip point
        std::uint64_t killNs = 0;     ///< SIGKILL escalation point
        std::uint64_t readyNs = 0;    ///< backoff release point
        bool timedOut = false;
        bool termSent = false;
        bool killSent = false;
        std::string error;         ///< terminal diagnostics
        std::vector<int> waiters;  ///< fds blocked in `wait`
    };

    struct Client
    {
        std::string inbuf;
    };

    ServeOptions opts;
    int listenFd = -1;
    bool draining = false;
    std::uint64_t nextJobNumber = 1;
    std::map<int, Client> clients;
    std::map<std::string, Job> jobs;
    std::deque<std::string> queue; ///< job ids awaiting a worker
    unsigned running = 0;
    ServeCounters _counters;

    std::string jobPath(const std::string &id) const;
    std::string outPath(const std::string &id) const;
    std::string errPath(const std::string &id) const;

    void recoverSpool();
    void bindSocket();
    void acceptClient();
    void closeClient(int fd);
    void readClient(int fd);
    void handleLine(int fd, const std::string &line);
    void handleSubmit(int fd, const JobDescriptor &desc);
    void sendLine(int fd, const std::string &line);
    void notifyWaiters(Job &job);

    void dispatch();
    void spawn(Job &job);
    void reapWorkers();
    void enforceTimeouts();
    void attemptFinished(Job &job, int status);
    std::string statsLine() const;
};

} // namespace genie

#endif // GENIE_SERVE_SERVER_HH
