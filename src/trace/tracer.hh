/**
 * @file
 * Genie-Trace: tick-stamped structured event tracing.
 *
 * Every SimObject can emit spans (begin/end or explicit-interval
 * "complete" records) and instant events into the Tracer owned by its
 * EventQueue. Emission is strictly passive — the Tracer never
 * schedules events or perturbs component state, so a traced run and
 * an untraced run of the same design point produce identical
 * SocResults. When tracing is disabled the EventQueue carries a null
 * Tracer pointer and every emission site reduces to one pointer test.
 *
 * Two sinks consume the recorded stream:
 *
 *  - writeChromeJson(): Chrome trace-event / Perfetto JSON, so any
 *    run can be opened in a timeline viewer (chrome://tracing or
 *    ui.perfetto.dev). Tracks map to components, categories to the
 *    activity classes below.
 *  - the in-memory query API: spans() collapses a category (or one
 *    named span kind) into an IntervalSet for set-algebra runtime
 *    breakdowns, and durations() summarizes span lengths — the
 *    substrate the figure benches and tests consume.
 *
 * Categories (one bit each, maskable from the CLI):
 *   flush     CPU cache flush / invalidate maintenance
 *   dma       DMA engine transactions, descriptor fetches, chunks
 *   bus       shared-bus packet occupancy
 *   cache     accelerator/CPU cache miss lifetimes (MSHR spans)
 *   dram      DRAM controller request service
 *   datapath  accelerator node issue..retire
 *   tlb       accelerator TLB page-walk spans
 *   spad      scratchpad bank-conflict instants
 *   iface     SoC-interface activity: ACP transactions, posted
 *             interrupts, command-queue drains
 */

#ifndef GENIE_TRACE_TRACER_HH
#define GENIE_TRACE_TRACER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/interval_set.hh"
#include "sim/types.hh"
#include "sim/thread_safety.hh"

namespace genie
{

/** Activity classes; each event carries exactly one. */
enum class TraceCategory : std::uint8_t
{
    Flush,
    Dma,
    Bus,
    Cache,
    Dram,
    Datapath,
    Tlb,
    Spad,
    Iface,
};

constexpr std::size_t numTraceCategories = 9;

/** One enabled-bit per TraceCategory. */
using TraceCategoryMask = std::uint32_t;

constexpr TraceCategoryMask
traceCategoryBit(TraceCategory c)
{
    return 1u << static_cast<unsigned>(c);
}

constexpr TraceCategoryMask allTraceCategories =
    (1u << numTraceCategories) - 1;

/** Stable lowercase category name (used in JSON and the CLI). */
const char *traceCategoryName(TraceCategory c);

/**
 * Parse a comma-separated category list ("dma,flush,datapath") into a
 * mask; "all" (or an empty string) selects every category. fatal() on
 * an unknown name.
 */
TraceCategoryMask parseTraceCategories(const std::string &csv);

/** Render @p mask as the canonical comma-separated list. */
std::string traceCategoriesToString(TraceCategoryMask mask);

/** Tracing knobs threaded through SocConfig. */
struct TraceConfig GENIE_THREAD_LOCAL_OK
{
    /** Master switch: when false no Tracer is constructed at all. */
    bool enabled = false;
    /** Which categories record events. */
    TraceCategoryMask categories = allTraceCategories;
    /** Chrome trace-event JSON output path; empty = in-memory only. */
    std::string outPath;
};

/** Handle for an open span. 0 means "not recorded" (category off);
 * end() on it is a no-op, so emission sites need no second check. */
using TraceSpanId = std::uint64_t;
constexpr TraceSpanId invalidTraceSpan = 0;

/**
 * One causal edge between two recorded spans (Genie-Scope): the
 * component that recorded span `from` scheduled — via the flow-aware
 * scheduleFlow()/scheduleFlowIn()/scheduleCycles() helpers — the
 * event in which span `to` was recorded. Since `from` is always
 * recorded before `to`, from < to and the flow set forms a DAG over
 * span ids by construction.
 */
struct FlowLink GENIE_THREAD_LOCAL_OK
{
    TraceSpanId from = 0;
    TraceSpanId to = 0;
};

/**
 * Read-only view of one recorded span, for analysis consumers
 * (src/scope). `id` is the 1-based record id flows refer to.
 */
struct SpanView GENIE_THREAD_LOCAL_OK
{
    TraceSpanId id = 0;
    Tick begin = 0;
    Tick end = 0;
    std::string_view track;
    std::string_view name;
    TraceCategory cat = TraceCategory::Flush;
    bool open = false;
};

/** Span-duration summary for one category (or one span name). */
struct TraceDurations GENIE_THREAD_LOCAL_OK
{
    std::uint64_t count = 0;
    Tick minTicks = 0;
    Tick maxTicks = 0;
    Tick totalTicks = 0;

    double
    meanTicks() const
    {
        return count > 0
                   ? static_cast<double>(totalTicks) /
                         static_cast<double>(count)
                   : 0.0;
    }
};

/**
 * The per-EventQueue event recorder. Single-threaded by construction
 * (one Tracer per EventQueue per Soc), so sweeps tracing thousands of
 * concurrent design points never contend or interleave.
 */
class Tracer GENIE_THREAD_LOCAL_OK
{
  public:
    explicit Tracer(const EventQueue &eq,
                    TraceCategoryMask mask = allTraceCategories);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** True if events of category @p c are being recorded. */
    bool
    wants(TraceCategory c) const
    {
        return (mask & traceCategoryBit(c)) != 0;
    }

    TraceCategoryMask categories() const { return mask; }

    /**
     * Open a span on @p track (the emitting component's name) at the
     * current tick. @return a handle for end(), or invalidTraceSpan
     * if the category is masked off.
     */
    TraceSpanId begin(TraceCategory c, std::string_view track,
                      std::string_view name);

    /** Close an open span at the current tick. No-op on
     * invalidTraceSpan. */
    void end(TraceSpanId id);

    /**
     * Record a span with an explicit [begin, end) interval — for
     * analytically scheduled activities whose end tick is known at
     * emission time (flush chunks, bus occupancy, DRAM service).
     */
    void complete(TraceCategory c, std::string_view track,
                  std::string_view name, Tick beginTick, Tick endTick);

    /** Record a zero-duration event at the current tick. */
    void instant(TraceCategory c, std::string_view track,
                 std::string_view name);

    // ---- In-memory query API ----

    /** Total recorded events (spans + instants). */
    std::size_t numEvents() const { return records.size(); }

    /** Spans opened by begin() and not yet closed by end(). */
    std::size_t openSpans() const { return openCount; }

    /** Union of all span intervals in @p c (instants excluded). */
    IntervalSet spans(TraceCategory c) const;

    /** Union of the span intervals in @p c named @p name. */
    IntervalSet spans(TraceCategory c, std::string_view name) const;

    /** Duration histogram inputs over all closed spans in @p c. */
    TraceDurations durations(TraceCategory c) const;

    /** Duration summary for closed spans in @p c named @p name. */
    TraceDurations durations(TraceCategory c,
                             std::string_view name) const;

    /** Number of instant events in @p c named @p name. */
    std::uint64_t instantCount(TraceCategory c,
                               std::string_view name) const;

    /**
     * Every recorded span (instants excluded) as analysis views, in
     * record order. The string_views alias the tracer's interned
     * pool and stay valid for its lifetime.
     */
    std::vector<SpanView> spanViews() const;

    /** Causal edges between spans, in recording order. */
    const std::vector<FlowLink> &flowLinks() const { return flows; }

    // ---- Sinks ----

    /** Serialize as Chrome trace-event JSON (Perfetto-compatible). */
    void writeChromeJson(std::ostream &os) const;

    /** Write the Chrome JSON to @p path; fatal() if unwritable. */
    void writeChromeJsonFile(const std::string &path) const;

  private:
    enum class Kind : std::uint8_t
    {
        Span,
        Instant,
    };

    struct Record
    {
        Tick begin = 0;
        Tick end = 0;
        std::uint32_t track = 0; ///< interned string index
        std::uint32_t name = 0;  ///< interned string index
        TraceCategory cat = TraceCategory::Flush;
        Kind kind = Kind::Span;
        bool open = false;
    };

    std::uint32_t intern(std::string_view s);

    /** Close a pending flow edge into span @p id (if the executing
     * event carries a consumable origin) and advance the ambient
     * cursor. Called by every span-recording entry point. */
    void noteSpanRecorded(TraceSpanId id);

    const EventQueue &eventq;
    TraceCategoryMask mask;

    std::vector<Record> records;
    std::vector<FlowLink> flows;
    /** Interned track/name strings; records index into this pool. */
    std::vector<std::string> strings;
    std::unordered_map<std::string, std::uint32_t> stringIndex;
    std::size_t openCount = 0;
};

/**
 * The tracer of @p eq if tracing is on and @p c is enabled, else
 * null. The one-line guard every emission site uses:
 *
 *   if (Tracer *t = tracerFor(eventq, TraceCategory::Dma))
 *       t->instant(TraceCategory::Dma, name(), "...");
 */
inline Tracer *
tracerFor(const EventQueue &eq, TraceCategory c)
{
    Tracer *t = eq.tracer();
    return (t != nullptr && t->wants(c)) ? t : nullptr;
}

} // namespace genie

#endif // GENIE_TRACE_TRACER_HH
