#include "tracer.hh"

#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace genie
{

namespace
{

/** Category name table, indexed by TraceCategory. */
constexpr const char *categoryNames[numTraceCategories] = {
    "flush", "dma", "bus", "cache", "dram", "datapath", "tlb", "spad",
    "iface",
};

/** Minimal JSON string escaping; track/name strings are component
 * names, so anything beyond quotes/backslash/control is pass-through.
 */
void
appendJsonEscaped(std::string &out, std::string_view s)
{
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20)
                out += format("\\u%04x", static_cast<unsigned>(ch));
            else
                out += ch;
        }
    }
}

/**
 * Render a picosecond tick count as a microsecond value with exact
 * six-digit decimals. Pure integer arithmetic keeps the JSON
 * byte-identical across runs, platforms, and libm versions.
 */
std::string
ticksToMicros(Tick ticks)
{
    return format("%llu.%06llu",
                  static_cast<unsigned long long>(ticks / 1000000),
                  static_cast<unsigned long long>(ticks % 1000000));
}

} // namespace

const char *
traceCategoryName(TraceCategory c)
{
    auto idx = static_cast<std::size_t>(c);
    GENIE_ASSERT(idx < numTraceCategories, "bad trace category %zu",
                 idx);
    return categoryNames[idx];
}

TraceCategoryMask
parseTraceCategories(const std::string &csv)
{
    if (csv.empty() || csv == "all")
        return allTraceCategories;
    TraceCategoryMask mask = 0;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        bool known = false;
        for (std::size_t i = 0; i < numTraceCategories; ++i) {
            if (item == categoryNames[i]) {
                mask |= traceCategoryBit(static_cast<TraceCategory>(i));
                known = true;
                break;
            }
        }
        if (!known)
            fatal("unknown trace category '%s' (expected one of "
                  "flush,dma,bus,cache,dram,datapath,tlb,spad,iface "
                  "or "
                  "'all')",
                  item.c_str());
    }
    return mask;
}

std::string
traceCategoriesToString(TraceCategoryMask mask)
{
    if (mask == allTraceCategories)
        return "all";
    std::string out;
    for (std::size_t i = 0; i < numTraceCategories; ++i) {
        if ((mask & traceCategoryBit(static_cast<TraceCategory>(i))) ==
            0)
            continue;
        if (!out.empty())
            out += ',';
        out += categoryNames[i];
    }
    return out;
}

Tracer::Tracer(const EventQueue &eq, TraceCategoryMask m)
    : eventq(eq), mask(m)
{
    // Index 0 of the string pool is reserved so that interned indices
    // are never confused with "unset".
    strings.emplace_back("");
}

void
Tracer::noteSpanRecorded(TraceSpanId id)
{
    // First span recorded in a flow-scheduled event closes the causal
    // edge back to the span that scheduled it; later spans in the
    // same event chain off the cursor of whoever schedules next.
    std::uint64_t origin = eventq.pendingFlowOrigin();
    if (origin != 0 && origin != id) {
        flows.push_back({origin, id});
        eventq.consumeFlowOrigin();
    }
    eventq.setFlowCursor(id);
}

std::uint32_t
Tracer::intern(std::string_view s)
{
    auto it = stringIndex.find(std::string(s));
    if (it != stringIndex.end())
        return it->second;
    auto idx = static_cast<std::uint32_t>(strings.size());
    strings.emplace_back(s);
    stringIndex.emplace(strings.back(), idx);
    return idx;
}

TraceSpanId
Tracer::begin(TraceCategory c, std::string_view track,
              std::string_view name)
{
    if (!wants(c))
        return invalidTraceSpan;
    Record r;
    r.begin = eventq.curTick();
    r.end = r.begin;
    r.track = intern(track);
    r.name = intern(name);
    r.cat = c;
    r.kind = Kind::Span;
    r.open = true;
    records.push_back(r);
    ++openCount;
    // Ids are 1-based record indices so 0 stays the invalid handle.
    auto id = static_cast<TraceSpanId>(records.size());
    noteSpanRecorded(id);
    return id;
}

void
Tracer::end(TraceSpanId id)
{
    if (id == invalidTraceSpan)
        return;
    GENIE_ASSERT(id <= records.size(), "bad trace span id %llu",
                 static_cast<unsigned long long>(id));
    Record &r = records[static_cast<std::size_t>(id - 1)];
    GENIE_ASSERT(r.open, "trace span %llu ended twice",
                 static_cast<unsigned long long>(id));
    Tick now = eventq.curTick();
    GENIE_ASSERT(now >= r.begin, "trace span ends before it begins");
    r.end = now;
    r.open = false;
    GENIE_ASSERT(openCount > 0, "open-span accounting underflow");
    --openCount;
}

void
Tracer::complete(TraceCategory c, std::string_view track,
                 std::string_view name, Tick beginTick, Tick endTick)
{
    if (!wants(c))
        return;
    GENIE_ASSERT(endTick >= beginTick,
                 "trace span ends before it begins");
    Record r;
    r.begin = beginTick;
    r.end = endTick;
    r.track = intern(track);
    r.name = intern(name);
    r.cat = c;
    r.kind = Kind::Span;
    r.open = false;
    records.push_back(r);
    noteSpanRecorded(static_cast<TraceSpanId>(records.size()));
}

void
Tracer::instant(TraceCategory c, std::string_view track,
                std::string_view name)
{
    if (!wants(c))
        return;
    Record r;
    r.begin = eventq.curTick();
    r.end = r.begin;
    r.track = intern(track);
    r.name = intern(name);
    r.cat = c;
    r.kind = Kind::Instant;
    r.open = false;
    records.push_back(r);
}

IntervalSet
Tracer::spans(TraceCategory c) const
{
    IntervalSet set;
    for (const Record &r : records) {
        if (r.cat != c || r.kind != Kind::Span || r.open)
            continue;
        if (r.end > r.begin)
            set.add(r.begin, r.end);
    }
    return set;
}

IntervalSet
Tracer::spans(TraceCategory c, std::string_view name) const
{
    IntervalSet set;
    for (const Record &r : records) {
        if (r.cat != c || r.kind != Kind::Span || r.open)
            continue;
        if (strings[r.name] != name)
            continue;
        if (r.end > r.begin)
            set.add(r.begin, r.end);
    }
    return set;
}

TraceDurations
Tracer::durations(TraceCategory c) const
{
    TraceDurations d;
    for (const Record &r : records) {
        if (r.cat != c || r.kind != Kind::Span || r.open)
            continue;
        Tick len = r.end - r.begin;
        if (d.count == 0) {
            d.minTicks = len;
            d.maxTicks = len;
        } else {
            d.minTicks = std::min(d.minTicks, len);
            d.maxTicks = std::max(d.maxTicks, len);
        }
        d.totalTicks += len;
        ++d.count;
    }
    return d;
}

TraceDurations
Tracer::durations(TraceCategory c, std::string_view name) const
{
    TraceDurations d;
    for (const Record &r : records) {
        if (r.cat != c || r.kind != Kind::Span || r.open)
            continue;
        if (strings[r.name] != name)
            continue;
        Tick len = r.end - r.begin;
        if (d.count == 0) {
            d.minTicks = len;
            d.maxTicks = len;
        } else {
            d.minTicks = std::min(d.minTicks, len);
            d.maxTicks = std::max(d.maxTicks, len);
        }
        d.totalTicks += len;
        ++d.count;
    }
    return d;
}

std::vector<SpanView>
Tracer::spanViews() const
{
    std::vector<SpanView> out;
    out.reserve(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        const Record &r = records[i];
        if (r.kind != Kind::Span)
            continue;
        SpanView v;
        v.id = static_cast<TraceSpanId>(i + 1);
        v.begin = r.begin;
        v.end = r.end;
        v.track = strings[r.track];
        v.name = strings[r.name];
        v.cat = r.cat;
        v.open = r.open;
        out.push_back(v);
    }
    return out;
}

std::uint64_t
Tracer::instantCount(TraceCategory c, std::string_view name) const
{
    std::uint64_t n = 0;
    for (const Record &r : records) {
        if (r.cat == c && r.kind == Kind::Instant &&
            strings[r.name] == name)
            ++n;
    }
    return n;
}

void
Tracer::writeChromeJson(std::ostream &os) const
{
    // Tracks (component names) map to Chrome "thread" ids in first-use
    // order, which is deterministic because emission order is.
    std::vector<std::uint32_t> trackIds(strings.size(), 0);
    std::vector<std::uint32_t> trackOrder;
    for (const Record &r : records) {
        if (trackIds[r.track] == 0) {
            trackIds[r.track] =
                static_cast<std::uint32_t>(trackOrder.size() + 1);
            trackOrder.push_back(r.track);
        }
    }

    std::string out;
    out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;
    for (std::uint32_t stringIdx : trackOrder) {
        if (!first)
            out += ",\n";
        first = false;
        out += format("{\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
                      "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                      trackIds[stringIdx]);
        appendJsonEscaped(out, strings[stringIdx]);
        out += "\"}}";
    }
    for (const Record &r : records) {
        if (!first)
            out += ",\n";
        first = false;
        if (r.kind == Kind::Instant) {
            out += format("{\"ph\":\"i\",\"pid\":0,\"tid\":%u,"
                          "\"cat\":\"%s\",\"name\":\"",
                          trackIds[r.track],
                          traceCategoryName(r.cat));
            appendJsonEscaped(out, strings[r.name]);
            out += format("\",\"ts\":%s,\"s\":\"t\"}",
                          ticksToMicros(r.begin).c_str());
        } else if (r.open) {
            // Span never closed (e.g. dump mid-run): emit a bare
            // begin event so viewers still show its start.
            out += format("{\"ph\":\"B\",\"pid\":0,\"tid\":%u,"
                          "\"cat\":\"%s\",\"name\":\"",
                          trackIds[r.track],
                          traceCategoryName(r.cat));
            appendJsonEscaped(out, strings[r.name]);
            out += format("\",\"ts\":%s}",
                          ticksToMicros(r.begin).c_str());
        } else {
            out += format("{\"ph\":\"X\",\"pid\":0,\"tid\":%u,"
                          "\"cat\":\"%s\",\"name\":\"",
                          trackIds[r.track],
                          traceCategoryName(r.cat));
            appendJsonEscaped(out, strings[r.name]);
            out += format("\",\"ts\":%s,\"dur\":%s}",
                          ticksToMicros(r.begin).c_str(),
                          ticksToMicros(r.end - r.begin).c_str());
        }
    }
    // Perfetto flow events: an "s" (start) at the origin span and a
    // matching "f" (finish, binding to the enclosing slice) at the
    // destination, paired by flow id. The "s" is stamped at the
    // origin's end tick — the latest instant inside its slice, and
    // the closest renderable moment to the schedule call.
    for (std::size_t i = 0; i < flows.size(); ++i) {
        const FlowLink &fl = flows[i];
        const Record &from =
            records[static_cast<std::size_t>(fl.from - 1)];
        const Record &to = records[static_cast<std::size_t>(fl.to - 1)];
        out += format(",\n{\"ph\":\"s\",\"pid\":0,\"tid\":%u,"
                      "\"cat\":\"%s\",\"name\":\"flow\",\"id\":%zu,"
                      "\"ts\":%s}",
                      trackIds[from.track],
                      traceCategoryName(from.cat), i + 1,
                      ticksToMicros(from.open ? from.begin : from.end)
                          .c_str());
        out += format(",\n{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,"
                      "\"tid\":%u,\"cat\":\"%s\",\"name\":\"flow\","
                      "\"id\":%zu,\"ts\":%s}",
                      trackIds[to.track], traceCategoryName(to.cat),
                      i + 1, ticksToMicros(to.begin).c_str());
    }
    out += format("\n],\"metadata\":{\"tickUnit\":\"ps\","
                  "\"categories\":\"%s\",\"events\":%llu,"
                  "\"flows\":%llu}}\n",
                  traceCategoriesToString(mask).c_str(),
                  static_cast<unsigned long long>(records.size()),
                  static_cast<unsigned long long>(flows.size()));
    os << out;
}

void
Tracer::writeChromeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace output file '%s'", path.c_str());
    writeChromeJson(out);
}

} // namespace genie
