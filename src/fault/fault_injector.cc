#include "fault_injector.hh"

#include "sim/logging.hh"

namespace genie
{

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::DramRead:
        return "dram_read";
      case FaultSite::BusResp:
        return "bus_resp";
      case FaultSite::DmaBeat:
        return "dma_beat";
      case FaultSite::TlbWalk:
        return "tlb_walk";
      case FaultSite::AcpSnoop:
        return "acp_snoop";
      case FaultSite::IrqDrop:
        return "irq_drop";
    }
    return "unknown";
}

FaultInjector::FaultInjector(std::string name_, EventQueue &eq,
                             const FaultConfig &cfg_)
    : SimObject(std::move(name_)), cfg(cfg_)
{
    for (unsigned i = 0; i < numFaultSites; ++i) {
        double r = cfg.rates[i];
        if (r < 0.0 || r > 1.0) {
            fatal("%s: fault rate for site %s is %g; must be within "
                  "[0, 1]",
                  name().c_str(),
                  faultSiteName(static_cast<FaultSite>(i)), r);
        }
        // Independent per-site streams: decisions at one site never
        // shift the draw sequence of another, so adding a second
        // fault site to a campaign leaves the first site's injection
        // pattern untouched.
        streams[i] = Rng(cfg.seed ^
                         (0x9e3779b97f4a7c15ull * (i + 1)));
        const char *site = faultSiteName(static_cast<FaultSite>(i));
        statChecks[i] = &stats().add(
            std::string(site) + ".checks",
            std::string("injection decisions made at ") + site);
        statInjected[i] = &stats().add(
            std::string(site) + ".injected",
            std::string("faults injected at ") + site);
    }
    eq.registerStats(stats());
}

bool
FaultInjector::shouldFault(FaultSite site)
{
    unsigned i = static_cast<unsigned>(site);
    *statChecks[i] += 1;
    if (!streams[i].chance(cfg.rates[i]))
        return false;
    *statInjected[i] += 1;
    return true;
}

std::uint64_t
FaultInjector::checks(FaultSite site) const
{
    return static_cast<std::uint64_t>(
        statChecks[static_cast<unsigned>(site)]->value());
}

std::uint64_t
FaultInjector::injections(FaultSite site) const
{
    return static_cast<std::uint64_t>(
        statInjected[static_cast<unsigned>(site)]->value());
}

} // namespace genie
