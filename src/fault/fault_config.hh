/**
 * @file
 * Configuration for the Genie-Resilience fault campaign.
 *
 * A campaign is described by a seed plus one injection probability per
 * fault *site* — the memory-system boundaries where transient errors
 * can be introduced. All randomness is drawn from the deterministic
 * sim/random.hh Rng, one independent stream per site, so the same
 * seed always reproduces the byte-identical run and enabling one site
 * never perturbs the decisions of another.
 */

#ifndef GENIE_FAULT_FAULT_CONFIG_HH
#define GENIE_FAULT_FAULT_CONFIG_HH

#include <cstdint>

namespace genie
{

/** Memory-system boundaries where transient faults can be injected. */
enum class FaultSite : std::uint8_t
{
    /** DRAM read completes with an uncorrectable error (ErrorResp
     * instead of ReadResp). */
    DramRead,
    /** The bus NACKs a response in flight: the original response is
     * dropped and the requester sees an ErrorResp instead. */
    BusResp,
    /** A DMA beat fails at the engine even though the memory system
     * answered (e.g. a corrupted beat detected at the boundary). */
    DmaBeat,
    /** A TLB page-table walk times out and must be re-walked. */
    TlbWalk,
    /** An ACP beat fails at the coherency port even though the
     * memory system answered (e.g. a snoop response corrupted at the
     * one-way-coherent boundary). */
    AcpSnoop,
    /** A posted interrupt is lost before delivery and must be
     * re-posted by the interrupt line. */
    IrqDrop,
};

constexpr unsigned numFaultSites = 6;

/** Stable lower-case site name for stats, config keys, and logs. */
const char *faultSiteName(FaultSite site);

/** One fault campaign: seed, per-site rates, and the retry policy
 * components apply when they observe an injected error. */
struct FaultConfig
{
    /** Campaign seed; per-site Rng streams are derived from it. */
    std::uint64_t seed = 1;

    /** Per-site injection probabilities in [0, 1]; index by
     * static_cast<unsigned>(FaultSite). All-zero (the default) means
     * no campaign: the Soc does not even construct an injector, so a
     * zero-rate run is byte-identical to a fault-free build. */
    double rates[numFaultSites] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0};

    /** Maximum reissues of one request before the requester declares
     * the transaction failed (cache fatal, DMA done(false)). */
    unsigned maxRetries = 8;

    /** Base backoff in component clock cycles; retry k waits
     * backoffCycles << min(k, 16) cycles before reissuing. */
    unsigned backoffCycles = 4;

    /**
     * Forward-progress watchdog check interval in accelerator-clock
     * cycles; 0 (the default) disables the watchdog. Lives here so
     * one struct carries the whole resilience configuration, but the
     * watchdog is independent of injection — it also guards
     * fault-free runs against wedged components.
     */
    std::uint64_t watchdogCycles = 0;

    double
    rate(FaultSite site) const
    {
        return rates[static_cast<unsigned>(site)];
    }

    /** True when any injection site has a nonzero probability. */
    bool
    anyEnabled() const
    {
        for (unsigned i = 0; i < numFaultSites; ++i)
            if (rates[i] > 0.0)
                return true;
        return false;
    }
};

} // namespace genie

#endif // GENIE_FAULT_FAULT_CONFIG_HH
