#include "watchdog.hh"

namespace genie
{

Watchdog::Watchdog(std::string name_, EventQueue &eq, Params p)
    : SimObject(std::move(name_)), eventq(eq), params(p),
      statChecks(stats().add("checks",
                             "forward-progress checks performed")),
      statStalls(stats().add("stalls", "stalls detected (aborts run)"))
{
    if (params.interval == 0)
        fatal("%s: watchdog interval must be > 0 ticks",
              name().c_str());
    eq.registerStats(stats());
}

Watchdog::~Watchdog() = default;

void
Watchdog::addProgressSource(std::string label,
                            std::function<std::uint64_t()> counter)
{
    sources.push_back({std::move(label), std::move(counter)});
}

void
Watchdog::addDiagnostic(std::string label,
                        std::function<std::string()> render)
{
    diagnostics.push_back({std::move(label), std::move(render)});
}

void
Watchdog::arm()
{
    GENIE_ASSERT(!_armed, "%s: arm() while already armed",
                 name().c_str());
    _armed = true;
    lastProgress = totalProgress();
    pendingCheck = eventq.scheduleIn(
        params.interval, [this] { check(); }, "watchdog.check");
}

void
Watchdog::disarm()
{
    if (!_armed)
        return;
    _armed = false;
    if (pendingCheck != invalidEventId) {
        eventq.deschedule(pendingCheck);
        pendingCheck = invalidEventId;
    }
}

std::uint64_t
Watchdog::totalProgress() const
{
    std::uint64_t sum = 0;
    for (const auto &s : sources)
        sum += s.counter();
    return sum;
}

std::string
Watchdog::diagnose() const
{
    std::string out = format(
        "%s: no forward progress for %llu ticks (tick %llu)\n",
        name().c_str(), (unsigned long long)params.interval,
        (unsigned long long)eventq.curTick());
    out += "  progress counters (all frozen for one interval):\n";
    for (const auto &s : sources) {
        out += format("    %-24s %llu\n", s.label.c_str(),
                      (unsigned long long)s.counter());
    }
    out += format("  event queue: %zu live event(s), head at tick "
                  "%llu\n",
                  eventq.size(),
                  (unsigned long long)eventq.nextTick());
    for (const auto &d : diagnostics) {
        out += format("  %s: %s\n", d.label.c_str(),
                      d.render().c_str());
    }
    return out;
}

void
Watchdog::check()
{
    pendingCheck = invalidEventId;
    if (!_armed)
        return;
    ++numChecks;
    statChecks += 1;

    std::uint64_t progress = totalProgress();
    if (progress == lastProgress) {
        statStalls += 1;
        std::string diagnosis = diagnose();
        warn("%s", diagnosis.c_str());
        _armed = false;
        throw SimulationStalledError(diagnosis);
    }

    lastProgress = progress;
    pendingCheck = eventq.scheduleIn(
        params.interval, [this] { check(); }, "watchdog.check");
}

} // namespace genie
