/**
 * @file
 * Watchdog: forward-progress detection for wedged simulations.
 *
 * A simulation that stops making progress but keeps firing events
 * (a component endlessly re-polling, a handshake dropped under fault
 * injection) would otherwise spin forever — the worst possible
 * failure mode for a thousand-point DSE sweep. The Watchdog sits on
 * the EventQueue and re-checks a set of registered progress counters
 * (committed datapath nodes, completed bus packets, DMA beats, DRAM
 * services) every `interval` ticks. If one whole interval elapses
 * with every counter frozen, it dumps a diagnosis — open trace spans,
 * live MSHRs, the DMA in-flight window, the event-queue head — and
 * aborts the run by throwing SimulationStalledError, a FatalError
 * subclass the Soc catches to return partial stats gracefully.
 *
 * The watchdog never perturbs a healthy run: its periodic event reads
 * counters only, so an armed watchdog over a progressing workload
 * produces byte-identical stats to a run without one (its own checks
 * stat lives in a separate group). Disarm it when the flow completes
 * so the self-rescheduling check does not keep the queue alive.
 */

#ifndef GENIE_FAULT_WATCHDOG_HH
#define GENIE_FAULT_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/sim_object.hh"

namespace genie
{

/** Thrown when the watchdog detects a stalled simulation. Derives
 * FatalError so existing catch sites (genie_run) handle it, while
 * callers that care (Soc::run) can distinguish it and salvage
 * partial results. what() carries the full diagnostic dump. */
class SimulationStalledError : public FatalError
{
  public:
    explicit SimulationStalledError(const std::string &msg)
        : FatalError(msg)
    {}
};

class Watchdog : public SimObject
{
  public:
    struct Params
    {
        /** Ticks between forward-progress checks; must be > 0. */
        Tick interval = 0;
    };

    Watchdog(std::string name, EventQueue &eq, Params params);
    ~Watchdog() override;

    /**
     * Register a monotonic counter that advances whenever the system
     * makes forward progress. The watchdog sums all sources; a stall
     * is declared only when the *sum* freezes for a full interval.
     */
    void addProgressSource(std::string label,
                           std::function<std::uint64_t()> counter);

    /** Register a diagnostic line renderer included in the stall
     * dump (open spans, MSHR occupancy, DMA window, ...). */
    void addDiagnostic(std::string label,
                       std::function<std::string()> render);

    /** Start checking: schedules the first check one interval out. */
    void arm();

    /** Stop checking and cancel the pending check event; call when
     * the flow completes so the queue can drain. */
    void disarm();

    bool armed() const { return _armed; }

    /** Checks performed so far (test/diagnostic hook). */
    std::uint64_t checksDone() const { return numChecks; }

    /** Render the diagnostic dump (also what() of the throw). */
    std::string diagnose() const;

  private:
    void check();
    std::uint64_t totalProgress() const;

    EventQueue &eventq;
    Params params;

    struct Source
    {
        std::string label;
        std::function<std::uint64_t()> counter;
    };
    struct Diagnostic
    {
        std::string label;
        std::function<std::string()> render;
    };

    std::vector<Source> sources;
    std::vector<Diagnostic> diagnostics;

    bool _armed = false;
    EventId pendingCheck = invalidEventId;
    std::uint64_t lastProgress = 0;
    std::uint64_t numChecks = 0;

    Stat &statChecks;
    Stat &statStalls;
};

} // namespace genie

#endif // GENIE_FAULT_WATCHDOG_HH
