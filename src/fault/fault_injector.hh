/**
 * @file
 * FaultInjector: the seeded fault-campaign engine.
 *
 * Components reach the injector through the EventQueue rendezvous
 * slot (EventQueue::faultInjector(), same pattern as the Tracer and
 * StatRegistry) so no constructor signature changes when faults are
 * enabled. Every injection site is one line:
 *
 *   if (FaultInjector *fi = eventq.faultInjector();
 *       fi && fi->shouldFault(FaultSite::DramRead)) { ... }
 *
 * Determinism contract: each site owns an independent Rng stream
 * derived from the campaign seed, and shouldFault() draws exactly one
 * value per call at that site (zero draws when the site's rate is 0
 * or 1 — Rng::chance() short-circuits degenerate probabilities).
 * Decisions therefore depend only on the seed and the per-site call
 * sequence, which is itself deterministic because the event queue has
 * a strict total order. The same seed always yields the byte-identical
 * run.
 */

#ifndef GENIE_FAULT_FAULT_INJECTOR_HH
#define GENIE_FAULT_FAULT_INJECTOR_HH

#include <string>

#include "fault/fault_config.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"

namespace genie
{

class FaultInjector : public SimObject
{
  public:
    FaultInjector(std::string name, EventQueue &eq,
                  const FaultConfig &cfg);

    /**
     * Deterministically decide whether to inject a fault at @p site
     * for the current operation. Counts the check and (on true) the
     * injection in the stats registry.
     */
    bool shouldFault(FaultSite site);

    const FaultConfig &config() const { return cfg; }

    /** Retry budget components apply to injected errors. */
    unsigned maxRetries() const { return cfg.maxRetries; }

    /**
     * Bounded exponential backoff: cycles to wait before reissue
     * number @p attempt (0-based). Doubles per attempt, with the
     * shift clamped so the delay cannot overflow.
     */
    std::uint64_t
    backoffCycles(unsigned attempt) const
    {
        unsigned shift = attempt < 16 ? attempt : 16;
        std::uint64_t base = cfg.backoffCycles ? cfg.backoffCycles : 1;
        return base << shift;
    }

    std::uint64_t checks(FaultSite site) const;
    std::uint64_t injections(FaultSite site) const;

  private:
    FaultConfig cfg;
    Rng streams[numFaultSites];
    Stat *statChecks[numFaultSites];
    Stat *statInjected[numFaultSites];
};

/**
 * Retry budget the component at @p eq should apply to error
 * responses. Falls back to FaultConfig defaults when no injector is
 * attached (errors can still arrive in unit tests that synthesize
 * ErrorResp packets by hand).
 */
inline unsigned
faultMaxRetries(const EventQueue &eq)
{
    const FaultInjector *fi = eq.faultInjector();
    return fi ? fi->maxRetries() : FaultConfig{}.maxRetries;
}

/** Backoff (component cycles) before reissue @p attempt (0-based). */
inline std::uint64_t
faultBackoffCycles(const EventQueue &eq, unsigned attempt)
{
    if (const FaultInjector *fi = eq.faultInjector())
        return fi->backoffCycles(attempt);
    unsigned shift = attempt < 16 ? attempt : 16;
    return static_cast<std::uint64_t>(FaultConfig{}.backoffCycles)
           << shift;
}

} // namespace genie

#endif // GENIE_FAULT_FAULT_INJECTOR_HH
