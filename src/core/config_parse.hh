/**
 * @file
 * Textual SocConfig parsing: build a design point from `key=value`
 * option strings, the way gem5 configs and the genie-run CLI drive
 * simulations without recompiling.
 *
 * Supported keys (see core/soc_config.hh for semantics):
 *   mem=dma|cache            lanes=N           partitions=N
 *   bus=32|64                pipelined=0|1     triggered=0|1
 *   cache_kb=N  cache_line=N cache_assoc=N     cache_ports=N
 *   cache_mshrs=N            prefetch=0|1      tlb_entries=N
 *   isolated=0|1             perfect_mem=0|1   inf_bw=0|1
 *   accel_mhz=N  cpu_mhz=N   bus_mhz=N
 *   trace=0|1    trace_out=PATH  trace_categories=LIST
 *   sample_period=N (accel cycles, 0=off)  sample_capacity=N
 *   stats_json=PATH  stats_csv=PATH  ("-" = stdout)
 *   samples_json=PATH  samples_csv=PATH
 */

#ifndef GENIE_CORE_CONFIG_PARSE_HH
#define GENIE_CORE_CONFIG_PARSE_HH

#include <string>
#include <vector>

#include "core/soc_config.hh"

namespace genie
{

/** Apply one `key=value` option; fatal() on unknown keys/values. */
void applyConfigOption(SocConfig &config, const std::string &option);

/** Apply a list of options to a default config. */
SocConfig parseConfig(const std::vector<std::string> &options);

/** Render the machine-readable option list for @p config
 * (round-trips through parseConfig). */
std::string configToOptions(const SocConfig &config);

} // namespace genie

#endif // GENIE_CORE_CONFIG_PARSE_HH
