#include "report.hh"

#include <iomanip>

#include "core/config_parse.hh"

namespace genie
{

void
printSummary(std::ostream &os, const SocConfig &config,
             const SocResults &r)
{
    os << "design: " << config.describe() << '\n';
    os << std::fixed << std::setprecision(2);
    os << "  latency       " << r.totalUs() << " us ("
       << r.accelCycles << " accelerator cycles)\n";
    os << "  breakdown     flush-only "
       << static_cast<double>(r.breakdown.flushOnly) * 1e-6
       << " us, dma "
       << static_cast<double>(r.breakdown.dmaFlush) * 1e-6
       << " us, overlap "
       << static_cast<double>(r.breakdown.computeDma) * 1e-6
       << " us, compute "
       << static_cast<double>(r.breakdown.computeOnly) * 1e-6
       << " us\n";
    os << "  energy        " << r.energyPj * 1e-3 << " nJ (dynamic "
       << r.dynamicPj * 1e-3 << ", leakage " << r.leakagePj * 1e-3
       << ")\n";
    os << "  power         " << r.avgPowerMw << " mW\n";
    os << "  EDP           " << std::scientific << r.edp
       << " J*s\n"
       << std::defaultfloat;
    if (r.cacheMissRate > 0 || r.tlbHitRate > 0) {
        os << std::fixed << std::setprecision(1);
        os << "  cache         miss rate "
           << r.cacheMissRate * 100 << "%, TLB hit rate "
           << r.tlbHitRate * 100 << "%, " << r.cacheToCacheTransfers
           << " cache-to-cache transfers\n"
           << std::defaultfloat;
    }
    if (r.dmaBytes > 0) {
        os << "  dma           " << r.dmaBytes << " bytes moved, "
           << r.readyBitStalls << " ready-bit stalls\n";
    }
    os << std::setprecision(1) << std::fixed;
    os << "  bus           " << r.busUtilization * 100
       << "% utilized, DRAM row hit rate " << r.dramRowHitRate * 100
       << "%\n"
       << std::defaultfloat;
}

void
dumpAllStats(std::ostream &os, Soc &soc)
{
    // Every component registered itself with the Soc's StatRegistry at
    // construction, so no per-component plumbing is needed here.
    soc.statRegistry().dump(os);
}

void
printRecord(std::ostream &os, const SocConfig &config,
            const SocResults &r)
{
    os << configToOptions(config) << " total_us=" << r.totalUs()
       << " accel_cycles=" << r.accelCycles
       << " energy_pj=" << r.energyPj << " power_mw=" << r.avgPowerMw
       << " edp=" << r.edp << " flush_us="
       << static_cast<double>(r.breakdown.flushOnly) * 1e-6
       << " dma_us="
       << static_cast<double>(r.breakdown.dmaFlush) * 1e-6
       << " overlap_us="
       << static_cast<double>(r.breakdown.computeDma) * 1e-6
       << " compute_us="
       << static_cast<double>(r.breakdown.computeOnly) * 1e-6
       << " miss_rate=" << r.cacheMissRate;
    if (r.stalled)
        os << " stalled=1";
    os << '\n';
}

} // namespace genie
