/**
 * @file
 * Human-readable and machine-readable reporting of simulation
 * results: a summary block, the full per-component statistics dump
 * (gem5's stats.txt equivalent), and a flat key=value record for
 * scripting.
 */

#ifndef GENIE_CORE_REPORT_HH
#define GENIE_CORE_REPORT_HH

#include <ostream>

#include "core/results.hh"
#include "core/soc.hh"

namespace genie
{

/** Print the headline results block. */
void printSummary(std::ostream &os, const SocConfig &config,
                  const SocResults &results);

/** Dump every component's statistics (gem5-style stats.txt). */
void dumpAllStats(std::ostream &os, Soc &soc);

/** One-line key=value record (for sweep post-processing scripts). */
void printRecord(std::ostream &os, const SocConfig &config,
                 const SocResults &results);

} // namespace genie

#endif // GENIE_CORE_REPORT_HH
