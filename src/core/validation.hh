/**
 * @file
 * Closed-form analytic performance model used to validate the
 * event-driven simulator (our substitute for the paper's Zedboard
 * measurements; see DESIGN.md substitution #2).
 *
 * For the baseline DMA offload flow the end-to-end latency decomposes
 * into independently computable terms:
 *
 *   T = T_invalidate + T_flush + T_dmaIn + T_compute + T_dmaOut + T_sync
 *
 * with T_flush/T_invalidate from the per-line analytic costs,
 * T_dma from bus bandwidth plus per-transaction overheads, and
 * T_compute from a resource-constrained dataflow bound
 * (max of the DDDG critical path and per-resource throughput limits).
 * The simulator additionally models arbitration, DRAM row misses,
 * bank conflicts and queueing, so simulated cycles should exceed the
 * analytic bound by a small margin — the "error" Figure 4 reports.
 */

#ifndef GENIE_CORE_VALIDATION_HH
#define GENIE_CORE_VALIDATION_HH

#include "accel/dddg.hh"
#include "accel/trace.hh"
#include "core/soc_config.hh"

namespace genie
{

/**
 * Reject nonsensical design points with actionable messages (via
 * fatal()) before any component is constructed. Catches the
 * parameter combinations that would otherwise surface as undefined
 * behavior deep in a run — zero beat sizes (divide-by-zero in the DMA
 * pump loop), non-power-of-two line sizes (broken set indexing), a
 * zero-size outstanding window (the engine could never issue a
 * beat), out-of-range fault rates, and the like. Called by Soc and
 * MultiSoc on every design point they build.
 */
void validateSocConfig(const SocConfig &cfg);

struct ValidationPrediction
{
    Tick invalidate = 0;
    Tick flush = 0;
    Tick dmaIn = 0;
    Tick compute = 0;
    Tick dmaOut = 0;
    Tick sync = 0;

    Tick
    total() const
    {
        return invalidate + flush + dmaIn + compute + dmaOut + sync;
    }
};

class ValidationModel
{
  public:
    /** Predict the baseline (unoptimized) DMA flow latency. */
    static ValidationPrediction predictDmaBaseline(
        const SocConfig &cfg, const Trace &trace, const Dddg &dddg);

    /** Resource-constrained compute-cycle bound (Aladdin-style). */
    static Cycles computeBound(const SocConfig &cfg, const Trace &trace,
                               const Dddg &dddg);

    /**
     * Dependence bound honoring the wave barrier: with N lanes,
     * iteration groups of N execute as synchronized waves, so the
     * schedule length is at least the sum over waves of each wave's
     * internal critical path (computed with infinite resources).
     */
    static Cycles barrierCriticalPathCycles(const Trace &trace,
                                            const Dddg &dddg,
                                            unsigned lanes);

    /** Bulk transfer time of @p bytes over the configured bus. */
    static Tick dmaTransferTime(const SocConfig &cfg,
                                std::uint64_t bytes, unsigned segments);
};

} // namespace genie

#endif // GENIE_CORE_VALIDATION_HH
