/**
 * @file
 * Canonical design-point identity for caching and checkpointing.
 *
 * Two SocConfigs that simulate identically must produce the same
 * canonical key, and two that differ in any result-affecting knob
 * must produce different keys. The key deliberately EXCLUDES the
 * observability blocks (tracing, metrics): a traced or sampled run is
 * byte-identical to a plain run by contract, so it would be wrong for
 * a stats-export path to defeat the sweep result cache.
 *
 * configFingerprint() hashes the canonical key (FNV-1a, 64 bit) for
 * compact journal records and fast map lookups; the ResultCache keys
 * on the full canonical string, so a hash collision can never cause a
 * false cache hit — the fingerprint is an index, the key is the
 * identity. test_properties.cc nevertheless proves the fingerprint
 * injective over every enumerated Figure 3 space.
 */

#ifndef GENIE_CORE_FINGERPRINT_HH
#define GENIE_CORE_FINGERPRINT_HH

#include <cstdint>
#include <string>

#include "core/soc_config.hh"

namespace genie
{

/** The canonical result-affecting parameter string of @p config:
 * every hardware knob, clock, characterized cost, study switch, and
 * the fault campaign; never tracing or metrics paths. */
std::string configCanonicalKey(const SocConfig &config);

/** FNV-1a 64-bit hash of configCanonicalKey(). */
std::uint64_t configFingerprint(const SocConfig &config);

/** Fixed-width lower-case hex rendering of a fingerprint. */
std::string fingerprintHex(std::uint64_t fingerprint);

} // namespace genie

#endif // GENIE_CORE_FINGERPRINT_HH
