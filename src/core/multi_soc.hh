/**
 * @file
 * Multi-accelerator systems.
 *
 * The paper's example SoC (Figure 3) carries two accelerators — one
 * cache-based, one scratchpad/DMA-based — on the same system bus, and
 * names behavior under shared-resource contention as one of the three
 * system-level considerations. MultiSoc instantiates N accelerator
 * complexes over one shared bus + DRAM + DMA engine and runs them
 * concurrently, so the contention between accelerators (not just
 * between one accelerator's own traffic streams) is measurable.
 *
 * Each accelerator gets its own datapath, local memory system
 * (scratchpad + ready bits, or cache + TLB), address-space slice, and
 * flush/DMA schedule; the bus, DRAM controller, DMA engine, and flush
 * engine (the CPU) are shared, which is exactly where the contention
 * appears.
 */

#ifndef GENIE_CORE_MULTI_SOC_HH
#define GENIE_CORE_MULTI_SOC_HH

#include <memory>
#include <vector>

#include "core/soc_config.hh"
#include "core/results.hh"
#include "accel/datapath.hh"
#include "dma/dma_engine.hh"
#include "dma/flush_model.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/full_empty.hh"
#include "mem/scratchpad.hh"
#include "mem/tlb.hh"
#include "sim/stats.hh"

namespace genie
{

/** One accelerator's workload + design inside a MultiSoc. */
struct AcceleratorSpec
{
    const Trace *trace = nullptr;
    const Dddg *dddg = nullptr;
    /** Per-accelerator knobs (memType, lanes, partitions, cache);
     * platform-level fields (bus width, clocks) are taken from the
     * MultiSoc's platform config. */
    SocConfig design;
};

/** Per-accelerator outcome. */
struct AcceleratorResult
{
    /** Offload start (t=0) to this accelerator's completion. */
    Tick finishTick = 0;
    Cycles accelCycles = 0;
};

struct MultiSocResults
{
    std::vector<AcceleratorResult> accelerators;
    /** All accelerators complete. */
    Tick totalTicks = 0;
    double busUtilization = 0.0;
};

class MultiSoc
{
  public:
    /** @p platform supplies the shared-system parameters (bus width
     * and clocks); @p specs one entry per accelerator. */
    MultiSoc(SocConfig platform, std::vector<AcceleratorSpec> specs);
    ~MultiSoc();

    MultiSoc(const MultiSoc &) = delete;
    MultiSoc &operator=(const MultiSoc &) = delete;

    /** Launch every accelerator's offload flow at t=0 and run until
     * all complete. */
    MultiSocResults run();

    EventQueue &eventQueue() { return eventq; }
    SystemBus &bus() { return *systemBus; }

    /** The event tracer, or null if platform tracing is disabled. */
    Tracer *tracer() { return eventTracer.get(); }

    /** Every component's stats (shared platform + all complexes). */
    StatRegistry &statRegistry() { return registry; }
    const StatRegistry &statRegistry() const { return registry; }

  private:
    struct Complex; // one accelerator's private components

    void buildComplex(std::size_t index);
    void startComplex(std::size_t index);
    void onComplexInputDone(std::size_t index);
    void onComplexDatapathDone(std::size_t index);
    void finishComplex(std::size_t index);

    SocConfig platform;
    std::vector<AcceleratorSpec> specs;

    EventQueue eventq;
    StatRegistry registry;
    std::unique_ptr<Tracer> eventTracer;
    std::unique_ptr<SystemBus> systemBus;
    std::unique_ptr<DramCtrl> dramCtrl;
    std::unique_ptr<FlushEngine> flush;
    std::unique_ptr<DmaEngine> dma;

    std::vector<std::unique_ptr<Complex>> complexes;
    std::size_t remaining = 0;
    bool ran = false;
};

} // namespace genie

#endif // GENIE_CORE_MULTI_SOC_HH
