#include "fingerprint.hh"

#include "sim/logging.hh"

namespace genie
{

std::string
configCanonicalKey(const SocConfig &c)
{
    // Every field here changes simulated results; order is frozen —
    // the journal schema (genie-sweep-1) and warm caches depend on
    // keys being stable across releases. New result-affecting knobs
    // are appended only when non-default (the fault-campaign
    // precedent): a default-valued knob simulates identically to a
    // build that predates it, so the old key may keep hitting, while
    // any non-default value produces a key old journals never wrote.
    // Host-side knobs (queue strategy, tracing/metrics sinks) are
    // deliberately absent: they cannot change simulated results, so
    // runs differing only in them must share one key.
    std::string s = format(
        "mem=%s lanes=%u partitions=%u bus=%u "
        "pipelined=%d triggered=%d page=%u setup=%llu window=%u "
        "cache_b=%u cache_line=%u cache_assoc=%u cache_ports=%u "
        "cache_mshrs=%u cache_hit=%llu prefetch=%d "
        "accel_mhz=%llu cpu_mhz=%llu bus_mhz=%llu "
        "tlb_entries=%u tlb_miss=%llu "
        "flush_line=%llu inval_line=%llu cpu_line=%u "
        "cpu_cache=%u cpu_dirty=%d "
        "isolated=%d perfect_mem=%d inf_bw=%d",
        memInterfaceName(c.memType), c.lanes, c.spadPartitions,
        c.busWidthBits, c.dma.pipelined ? 1 : 0,
        c.dma.triggeredCompute ? 1 : 0, c.dma.pageBytes,
        (unsigned long long)c.dma.setupCycles, c.dma.maxOutstanding,
        c.cache.sizeBytes, c.cache.lineBytes, c.cache.assoc,
        c.cache.ports, c.cache.mshrs,
        (unsigned long long)c.cache.hitLatency,
        c.cache.prefetch ? 1 : 0, (unsigned long long)c.accelMhz,
        (unsigned long long)c.cpuMhz, (unsigned long long)c.busMhz,
        c.tlbEntries, (unsigned long long)c.tlbMissLatency,
        (unsigned long long)c.flushPerLine,
        (unsigned long long)c.invalidatePerLine, c.cpuLineBytes,
        c.cpuCacheBytes, c.cpuHoldsDirtyInput ? 1 : 0,
        c.isolated ? 1 : 0, c.perfectMemory ? 1 : 0,
        c.infiniteBandwidth ? 1 : 0);
    // The fault campaign perturbs timing and retries, so it is part
    // of the identity; zero-rate campaigns are byte-identical to
    // fault-free runs and canonicalize to the same key.
    if (c.faults.anyEnabled()) {
        s += format(" fault_seed=%llu fault_rates=%.17g,%.17g,"
                    "%.17g,%.17g,%.17g,%.17g fault_retries=%u "
                    "fault_backoff=%u",
                    (unsigned long long)c.faults.seed,
                    c.faults.rate(FaultSite::DramRead),
                    c.faults.rate(FaultSite::BusResp),
                    c.faults.rate(FaultSite::DmaBeat),
                    c.faults.rate(FaultSite::TlbWalk),
                    c.faults.rate(FaultSite::AcpSnoop),
                    c.faults.rate(FaultSite::IrqDrop),
                    c.faults.maxRetries, c.faults.backoffCycles);
    }
    if (c.faults.watchdogCycles > 0) {
        s += format(" watchdog=%llu",
                    (unsigned long long)c.faults.watchdogCycles);
    }
    // Iface knobs (Genie-Iface) follow the same non-default-only
    // rule: a baseline config keys identically to a pre-iface build.
    if (c.iface.memType == IfaceMemType::Acp)
        s += " mem_type=acp";
    for (const auto &o : c.iface.arrayMemTypes) {
        s += format(" mem_type.%s=%s", o.first.c_str(),
                    ifaceMemTypeName(o.second));
    }
    if (c.iface.completion == CompletionMode::Interrupt) {
        s += format(" completion=interrupt irq_latency=%llu",
                    (unsigned long long)c.iface.irqLatency);
    }
    if (c.iface.queueDepth > 0)
        s += format(" queue_depth=%u", c.iface.queueDepth);
    if (c.iface.invocations != 1)
        s += format(" invocations=%u", c.iface.invocations);
    return s;
}

std::uint64_t
configFingerprint(const SocConfig &config)
{
    const std::string key = configCanonicalKey(config);
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char ch : key) {
        h ^= ch;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
fingerprintHex(std::uint64_t fingerprint)
{
    return format("%016llx", (unsigned long long)fingerprint);
}

} // namespace genie
