/**
 * @file
 * Results of one SoC simulation run: runtime, the paper's four-way
 * cycle-class breakdown, energy/power/EDP, and microarchitectural
 * detail stats used by the figures.
 */

#ifndef GENIE_CORE_RESULTS_HH
#define GENIE_CORE_RESULTS_HH

#include <cstdint>

#include "sim/types.hh"

namespace genie
{

/** The paper's runtime classification (Figures 2b, 5, 6). */
struct RuntimeBreakdown
{
    Tick flushOnly = 0;   ///< flush active, no DMA, no compute
    Tick dmaFlush = 0;    ///< DMA active (flush or not), no compute
    Tick computeDma = 0;  ///< compute and DMA overlapped
    Tick computeOnly = 0; ///< compute active, no DMA
    Tick other = 0;       ///< setup, synchronization, drain

    Tick
    total() const
    {
        return flushOnly + dmaFlush + computeDma + computeOnly + other;
    }
};

/** Everything measured in one run. */
struct SocResults
{
    /** End-to-end offload latency (flush start to CPU noticing the
     * completion flag), in ticks. */
    Tick totalTicks = 0;
    /** Datapath cycles from accelerator start to finish. */
    Cycles accelCycles = 0;

    RuntimeBreakdown breakdown;

    /** Accelerator energy (datapath + local memory + TLB + DMA path),
     * in picojoules. CPU and DRAM are excluded, as in the paper. */
    double energyPj = 0.0;
    double dynamicPj = 0.0;
    double leakagePj = 0.0;

    /** Average accelerator power over the run, in milliwatts. */
    double avgPowerMw = 0.0;

    /** Energy-delay product in joule-seconds. */
    double edp = 0.0;

    // Microarchitectural detail.
    double cacheMissRate = 0.0;
    double tlbHitRate = 0.0;
    double dramRowHitRate = 0.0;
    double busUtilization = 0.0;
    std::uint64_t dmaBytes = 0;
    std::uint64_t spadConflicts = 0;
    std::uint64_t readyBitStalls = 0;
    std::uint64_t cacheToCacheTransfers = 0;

    /** True when the watchdog aborted the run; the numbers above are
     * the partial state at the moment of the stall. */
    bool stalled = false;

    // Design descriptors used by the Kiviat comparison (Figure 9).
    std::uint64_t localSramBytes = 0;
    double localMemBandwidthBytesPerCycle = 0.0;
    unsigned lanes = 0;

    double totalSeconds() const { return static_cast<double>(totalTicks) * 1e-12; }
    double totalUs() const { return static_cast<double>(totalTicks) * 1e-6; }
    double energyJ() const { return energyPj * 1e-12; }
};

} // namespace genie

#endif // GENIE_CORE_RESULTS_HH
