/**
 * @file
 * The Soc: gem5-Aladdin's integration layer, and this repository's
 * primary contribution module.
 *
 * A Soc instance assembles one complete simulated system for one
 * design point — driver CPU, flush engine, DMA engine, system bus,
 * DRAM controller, and an Aladdin-style accelerator with either a
 * partitioned-scratchpad/DMA memory interface or a coherent cache +
 * TLB — then executes the full software offload flow over a workload
 * trace and reports runtime, the flush/DMA/compute breakdown, energy,
 * power, and EDP.
 *
 * Each Soc owns a private EventQueue, so arbitrarily many design
 * points can be simulated concurrently on different threads.
 */

#ifndef GENIE_CORE_SOC_HH
#define GENIE_CORE_SOC_HH

#include <memory>
#include <vector>

#include "accel/datapath.hh"
#include "core/results.hh"
#include "core/soc_config.hh"
#include "cpu/driver_cpu.hh"
#include "dma/dma_engine.hh"
#include "dma/flush_model.hh"
#include "fault/fault_injector.hh"
#include "fault/watchdog.hh"
#include "iface/acp_port.hh"
#include "iface/command_queue.hh"
#include "iface/interrupt_line.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/full_empty.hh"
#include "mem/scratchpad.hh"
#include "mem/tlb.hh"
#include "metrics/sampler.hh"
#include "sim/stats.hh"

namespace genie
{

class Soc
{
  public:
    /**
     * Build a system for @p config around @p trace/@p dddg. The trace
     * and DDDG must outlive the Soc (they are shared across many
     * design points in sweeps).
     */
    Soc(SocConfig config, const Trace &trace, const Dddg &dddg);
    ~Soc();

    Soc(const Soc &) = delete;
    Soc &operator=(const Soc &) = delete;

    /** Execute the offload flow to completion and collect results. */
    SocResults run();

    // Component access for tests and detailed studies.
    EventQueue &eventQueue() { return eventq; }
    SystemBus &bus() { return *systemBus; }
    DramCtrl &dram() { return *dramCtrl; }
    Datapath &datapath() { return *accel; }
    Cache *accelCache() { return cacheMem.get(); }
    Cache *cpuCache() { return cpuL1.get(); }
    AladdinTlb *tlb() { return accelTlb.get(); }
    Scratchpad *scratchpad() { return spad.get(); }
    DmaEngine &dmaEngine() { return *dma; }
    FlushEngine &flushEngine() { return *flush; }
    DriverCpu &cpu() { return *driver; }

    /** The coherency port, or null unless an array selects ACP. */
    AcpPort *acpPort() { return acp.get(); }
    /** The interrupt line, or null under spin completion. */
    InterruptLine *interruptLine() { return irqLine.get(); }
    /** The command queue, or null when queue_depth is zero. */
    CommandQueue *commandQueue() { return cmdQueue.get(); }

    /** The event tracer, or null when cfg.tracing.enabled is false. */
    Tracer *tracer() { return eventTracer.get(); }
    const Tracer *tracer() const { return eventTracer.get(); }

    /** Every component's stats, addressable by dotted path. */
    StatRegistry &statRegistry() { return registry; }
    const StatRegistry &statRegistry() const { return registry; }

    /** The time-series sampler, or null when cfg.metrics.samplePeriod
     * is zero. */
    MetricsSampler *sampler() { return metricsSampler.get(); }
    const MetricsSampler *sampler() const
    {
        return metricsSampler.get();
    }

    /** The fault injector, or null when every fault rate is zero. */
    FaultInjector *faultInjector() { return injector.get(); }
    const FaultInjector *faultInjector() const
    {
        return injector.get();
    }

    /** The forward-progress watchdog, or null when
     * cfg.faults.watchdogCycles is zero. */
    Watchdog *watchdog() { return progressWatchdog.get(); }
    const Watchdog *watchdog() const { return progressWatchdog.get(); }

    const SocConfig &config() const { return cfg; }

  private:
    class AccelDevice;

    void build();
    void buildScratchpadSide();
    void buildCacheSide();

    /** Start flush + input DMA/ACP (called from the driver program). */
    void beginInputPhase();
    void onInputPhaseDone();

    /** ioctl target: run the datapath per the configured flow. */
    void startAccelerator(std::function<void()> onFinish);
    void onDatapathDone();

    /** Launch one datapath invocation (queue drains re-enter here). */
    void launchInvocation();

    /** Drain output data (DMA and/or ACP), then complete the run. */
    void beginOutputPhase();

    /** Resolve per-array regimes, build the ACP plan, and (when any
     * array selects ACP) construct the port plus a dirty CPU L1 for
     * it to snoop. */
    void buildAcpSide();

    /** Write the Chrome JSON sink if an output path is configured. */
    void writeTraceOutput();

    /** Write stats/sample exports for every configured metrics path. */
    void writeMetricsOutputs();

    /** Assemble results after the event queue drains. */
    SocResults collect(Tick endTick);
    void computeEnergy(SocResults &r) const;
    RuntimeBreakdown computeBreakdown(Tick endTick) const;

    SocConfig cfg;
    const Trace &trace;
    const Dddg &dddg;

    EventQueue eventq;

    // Observability. Constructed before the components so every
    // emission during build and run is captured; attached to eventq so
    // components reach it without extra plumbing. The registry is
    // declared before the components so it outlives none of them and
    // every constructor can self-register through the event queue.
    StatRegistry registry;
    std::unique_ptr<Tracer> eventTracer;
    std::unique_ptr<MetricsSampler> metricsSampler;

    // Resilience. The injector is constructed (and attached to the
    // event queue) only when a fault rate is nonzero, so a zero-rate
    // campaign is byte-identical to a fault-free run; likewise the
    // watchdog only exists when an interval is configured.
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<Watchdog> progressWatchdog;

    /** Register progress sources + diagnostics on the watchdog. */
    void wireWatchdog();

    // Platform components.
    std::unique_ptr<SystemBus> systemBus;
    std::unique_ptr<DramCtrl> dramCtrl;
    std::unique_ptr<FlushEngine> flush;
    std::unique_ptr<DmaEngine> dma;
    std::unique_ptr<IoctlRegistry> ioctlRegistry;
    std::unique_ptr<DriverCpu> driver;
    std::unique_ptr<AccelDevice> device;

    // SoC interface (Genie-Iface). Each component is constructed
    // only when its knob is non-default, so a baseline run carries
    // no iface object and stays byte-identical to a pre-iface build.
    std::unique_ptr<AcpPort> acp;
    std::unique_ptr<InterruptLine> irqLine;
    std::unique_ptr<CommandQueue> cmdQueue;

    // Accelerator-local memory system.
    std::unique_ptr<Scratchpad> spad;
    std::unique_ptr<FullEmptyBits> feBits;
    std::unique_ptr<Cache> cacheMem;
    std::unique_ptr<Cache> cpuL1;
    std::unique_ptr<AladdinTlb> accelTlb;
    std::unique_ptr<Datapath> accel;

    // Address layout.
    std::vector<Addr> arrayDramBase; ///< DMA-side physical homes
    std::vector<Addr> arrayVBase;    ///< cache-side virtual bases
    std::vector<int> spadIds;        ///< trace array -> spad array
    std::vector<int> feIds;          ///< trace array -> ready-bit array

    // Pipelined-DMA page plan.
    std::vector<DmaEngine::Segment> inputPages;
    std::size_t pagesDone = 0;

    // Per-array regime plan (scratchpad side): which arrays move
    // over the ACP instead of the flush+DMA path, and the byte
    // totals of each partition. All-DMA defaults leave the ACP
    // vectors empty and the dma totals equal to the trace totals.
    std::vector<bool> arrayUsesAcp;
    std::vector<AcpPort::Segment> acpInputSegs;
    std::vector<AcpPort::Segment> acpOutputSegs;
    std::uint64_t dmaInBytes = 0;
    std::uint64_t dmaOutBytes = 0;
    std::uint64_t acpInBytes = 0;
    std::uint64_t acpOutBytes = 0;

    // Cache-mode transfer of register-promoted shared arrays: pulled
    // through the cache before compute, pushed back after.
    std::uint64_t cacheWarmupBytes = 0;
    std::uint64_t cacheDrainBytes = 0;

    /** Latency of moving @p bytes line-by-line through the cache. */
    Tick lineCopyLatency(std::uint64_t bytes) const;

    // Flow state.
    std::vector<std::size_t> inputOrder;
    bool inputDone = false;
    bool accelStartRequested = false;
    bool outputInvalidated = false;
    std::function<void()> pendingOutputDma;
    std::function<void()> pendingFinish;
    bool ran = false;
    Tick flowEndTick = 0;

    // Multi-invocation flow (Genie-Iface): completed datapath runs
    // this flow, and input/output partitions still in flight when
    // DMA- and ACP-moved arrays drain concurrently.
    unsigned invocationsDone = 0;
    unsigned inputPartsPending = 0;
    unsigned outputPartsPending = 0;
};

/** One-call convenience API: build, run, and tear down a design. */
SocResults runDesign(const SocConfig &config, const Trace &trace,
                     const Dddg &dddg);

} // namespace genie

#endif // GENIE_CORE_SOC_HH
