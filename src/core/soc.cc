#include "soc.hh"

#include <algorithm>

#include "core/validation.hh"
#include "metrics/export.hh"
#include "power/energy_model.hh"
#include "sim/logging.hh"

namespace genie
{

std::string
SocConfig::describe() const
{
    std::string s = format("%s lanes=%u", memInterfaceName(memType),
                           lanes);
    if (memType == MemInterface::ScratchpadDma) {
        s += format(" part=%u pipe=%d trig=%d", spadPartitions,
                    dma.pipelined ? 1 : 0,
                    dma.triggeredCompute ? 1 : 0);
    } else {
        s += format(" c=%uKB l=%uB w=%u p=%u", cache.sizeBytes / 1024,
                    cache.lineBytes, cache.assoc, cache.ports);
    }
    s += format(" bus=%ub", busWidthBits);
    if (iface.anyAcp())
        s += iface.memType == IfaceMemType::Acp ? " acp" : " acp*";
    if (iface.completion == CompletionMode::Interrupt)
        s += " irq";
    if (iface.queueDepth > 0)
        s += format(" q=%u", iface.queueDepth);
    if (iface.invocations != 1)
        s += format(" n=%u", iface.invocations);
    if (isolated)
        s += " [isolated]";
    return s;
}

/** The ioctl-visible accelerator device: starting it runs the
 * configured flow on the owning Soc. */
class Soc::AccelDevice : public IoctlDevice
{
  public:
    explicit AccelDevice(Soc &soc) : soc(soc) {}

    void
    start(std::function<void()> onFinish) override
    {
        soc.startAccelerator(std::move(onFinish));
    }

  private:
    Soc &soc;
};

Soc::Soc(SocConfig config, const Trace &trace_, const Dddg &dddg_)
    : cfg(std::move(config)), trace(trace_), dddg(dddg_),
      eventq(cfg.queue)
{
    validateSocConfig(cfg);

    // Attach the registry before build() so every component
    // constructor self-registers its stat group.
    eventq.setStatRegistry(&registry);
    if (cfg.tracing.enabled) {
        eventTracer =
            std::make_unique<Tracer>(eventq, cfg.tracing.categories);
        eventq.setTracer(eventTracer.get());
    }
    // The injector must exist before build() so components could in
    // principle consult it at construction; attaching it only when a
    // rate is nonzero keeps zero-rate campaigns byte-identical to
    // fault-free runs.
    if (cfg.faults.anyEnabled()) {
        injector = std::make_unique<FaultInjector>("fault.injector",
                                                   eventq, cfg.faults);
        eventq.setFaultInjector(injector.get());
    }
    build();
    if (cfg.faults.watchdogCycles > 0) {
        Watchdog::Params wp;
        wp.interval = cfg.faults.watchdogCycles *
                      ClockDomain::fromMhz(cfg.accelMhz).period();
        progressWatchdog = std::make_unique<Watchdog>(
            "fault.watchdog", eventq, wp);
        wireWatchdog();
    }
    if (cfg.metrics.samplePeriod > 0) {
        MetricsSampler::Params sp;
        sp.period = cfg.metrics.samplePeriod *
                    ClockDomain::fromMhz(cfg.accelMhz).period();
        sp.capacity = cfg.metrics.sampleCapacity;
        metricsSampler = std::make_unique<MetricsSampler>(
            eventq, registry, sp);
        metricsSampler->trackAllScalars();
    }
}

Soc::~Soc() = default;

void
Soc::wireWatchdog()
{
    Watchdog &wd = *progressWatchdog;

    // Progress = any counter that advances while the system does real
    // work, across every phase of the flow: flush/invalidate lines,
    // bus packets, DRAM services, DMA beats, committed datapath nodes
    // and completed driver ops. Spin-wait ticks are deliberately NOT
    // progress — a driver polling a completion flag that never comes
    // is exactly the wedge the watchdog exists to catch.
    auto stat = [](const StatGroup &g, const char *name) {
        return static_cast<std::uint64_t>(g.get(name));
    };
    wd.addProgressSource("bus.packets", [this, stat] {
        return stat(systemBus->stats(), "packets");
    });
    wd.addProgressSource("dram.services", [this, stat] {
        return stat(dramCtrl->stats(), "reads") +
               stat(dramCtrl->stats(), "writes");
    });
    wd.addProgressSource("flush.lines", [this, stat] {
        return stat(flush->stats(), "linesFlushed") +
               stat(flush->stats(), "linesInvalidated");
    });
    wd.addProgressSource("dma.beats", [this, stat] {
        return stat(dma->stats(), "beats");
    });
    wd.addProgressSource("cpu.ops", [this, stat] {
        return stat(driver->stats(), "ops");
    });
    wd.addProgressSource("datapath.nodes", [this, stat] {
        return stat(accel->stats(), "nodes");
    });
    if (spad) {
        wd.addProgressSource("spad.accesses", [this, stat] {
            return stat(spad->stats(), "reads") +
                   stat(spad->stats(), "writes");
        });
    }
    if (cacheMem) {
        wd.addProgressSource("cache.accesses", [this, stat] {
            return stat(cacheMem->stats(), "reads") +
                   stat(cacheMem->stats(), "writes");
        });
    }
    if (accelTlb) {
        wd.addProgressSource("tlb.lookups", [this, stat] {
            return stat(accelTlb->stats(), "hits") +
                   stat(accelTlb->stats(), "misses");
        });
    }
    if (acp) {
        wd.addProgressSource("acp.beats", [this, stat] {
            return stat(acp->stats(), "beats");
        });
    }
    if (irqLine) {
        wd.addProgressSource("irq.delivered", [this, stat] {
            return stat(irqLine->stats(), "delivered");
        });
    }

    // Diagnostics rendered into the stall dump.
    wd.addDiagnostic("dma", [this] {
        return format("%u beats in flight", dma->inFlightBeats());
    });
    if (acp) {
        wd.addDiagnostic("acp", [this] {
            return format("%u beats in flight", acp->inFlightBeats());
        });
    }
    if (irqLine) {
        wd.addDiagnostic("irq", [this] {
            return format("%u posts pending delivery",
                          irqLine->pendingDeliveries());
        });
    }
    if (cmdQueue) {
        wd.addDiagnostic("cmdq", [this] {
            return format("%zu descriptors queued", cmdQueue->size());
        });
    }
    if (cacheMem) {
        wd.addDiagnostic("accel.cache", [this] {
            return format("%zu live MSHRs%s",
                          cacheMem->outstandingMisses(),
                          cacheMem->hasOutstanding() ? "" : " (idle)");
        });
    }
    if (cpuL1) {
        wd.addDiagnostic("cpu.l1d", [this] {
            return format("%zu live MSHRs", cpuL1->outstandingMisses());
        });
    }
    if (eventTracer) {
        wd.addDiagnostic("trace", [this] {
            return format("%zu open spans, %zu events recorded",
                          eventTracer->openSpans(),
                          eventTracer->numEvents());
        });
    }
}

void
Soc::build()
{
    auto busClock = ClockDomain::fromMhz(cfg.busMhz);
    auto accelClock = ClockDomain::fromMhz(cfg.accelMhz);
    auto cpuClock = ClockDomain::fromMhz(cfg.cpuMhz);

    SystemBus::Params busParams;
    busParams.widthBits = cfg.busWidthBits;
    busParams.infiniteBandwidth = cfg.infiniteBandwidth;
    systemBus = std::make_unique<SystemBus>("system.bus", eventq,
                                            busClock, busParams);

    DramCtrl::Params dramParams;
    dramCtrl = std::make_unique<DramCtrl>("system.dram", eventq,
                                          busClock, *systemBus,
                                          dramParams);
    systemBus->setTarget(dramCtrl.get());

    FlushEngine::Params flushParams;
    flushParams.flushPerLine = cfg.flushPerLine;
    flushParams.invalidatePerLine = cfg.invalidatePerLine;
    flushParams.lineBytes = cfg.cpuLineBytes;
    flush = std::make_unique<FlushEngine>("cpu.flush", eventq,
                                          flushParams);

    DmaEngine::Params dmaParams;
    dmaParams.beatBytes = cfg.cpuLineBytes;
    dmaParams.maxOutstanding = cfg.dma.maxOutstanding;
    dmaParams.setupCycles = cfg.dma.setupCycles;
    dma = std::make_unique<DmaEngine>("system.dma", eventq, accelClock,
                                      *systemBus, dmaParams);

    ioctlRegistry = std::make_unique<IoctlRegistry>();
    DriverCpu::Params cpuParams;
    driver = std::make_unique<DriverCpu>("system.cpu", eventq, cpuClock,
                                         *flush, *ioctlRegistry,
                                         cpuParams);

    // Datapath core.
    Datapath::Params dpParams;
    dpParams.lanes = cfg.lanes;
    dpParams.perfectMemory = cfg.perfectMemory;
    auto mode = cfg.memType == MemInterface::ScratchpadDma
                    ? Datapath::MemMode::ScratchpadDma
                    : Datapath::MemMode::Cache;
    accel = std::make_unique<Datapath>("accel.datapath", eventq,
                                       accelClock, trace, dddg,
                                       dpParams, mode);

    // Array address layout: page-aligned, array-major.
    const Addr dramDataBase = 0x40000000;
    Addr nextDram = dramDataBase;
    Addr nextV = 0;
    for (const auto &a : trace.arrays) {
        arrayDramBase.push_back(nextDram);
        arrayVBase.push_back(nextV);
        Addr span = alignUp(a.sizeBytes, cfg.dma.pageBytes);
        nextDram += span;
        nextV += span;
    }

    if (cfg.memType == MemInterface::ScratchpadDma) {
        buildScratchpadSide();
        buildAcpSide();
    } else {
        buildCacheSide();
    }

    // Genie-Iface completion + batching. Both components exist only
    // when selected, so a default config wires nothing here.
    if (cfg.iface.completion == CompletionMode::Interrupt) {
        InterruptLine::Params ip;
        ip.deliveryLatency = cfg.iface.irqLatency;
        irqLine = std::make_unique<InterruptLine>("iface.irq", eventq,
                                                  cpuClock, ip);
        irqLine->setHandler([this] { driver->raiseInterrupt(); });
        driver->setCompletionSink([this] { irqLine->post(); });
    }
    if (cfg.iface.queueDepth > 0) {
        CommandQueue::Params qp;
        qp.depth = cfg.iface.queueDepth;
        cmdQueue = std::make_unique<CommandQueue>("iface.queue", eventq,
                                                  qp);
    }

    device = std::make_unique<AccelDevice>(*this);
    ioctlRegistry->registerDevice(0, device.get());
}

void
Soc::buildScratchpadSide()
{
    auto accelClock = ClockDomain::fromMhz(cfg.accelMhz);
    spad = std::make_unique<Scratchpad>("accel.spad", eventq,
                                        accelClock);
    feBits = std::make_unique<FullEmptyBits>("accel.readyBits",
                                             cfg.cpuLineBytes);
    // FullEmptyBits is unclocked and never sees the event queue, so
    // register its stats here rather than in its constructor.
    registry.registerGroup(feBits->stats());

    for (const auto &a : trace.arrays) {
        Scratchpad::ArrayConfig sc;
        sc.name = a.name;
        sc.sizeBytes = a.sizeBytes;
        sc.wordBytes = a.wordBytes;
        sc.partitions = effectiveSpadPartitions(
            a.sizeBytes, a.wordBytes, cfg.spadPartitions);
        sc.portsPerPartition = 1;
        spadIds.push_back(spad->addArray(sc));

        int feId = feBits->addArray(a.sizeBytes);
        bool tracked = cfg.dma.triggeredCompute && a.isInput &&
                       !cfg.isolated;
        feIds.push_back(tracked ? feId : -1);
        if (!tracked)
            feBits->fill(feId, 0, a.sizeBytes);
    }

    accel->attachScratchpad(spad.get(), spadIds, feBits.get(), feIds);

    // Transfer order: the driver sends small arrays (coefficient
    // tables, bounds vectors) first so DMA-triggered compute can
    // begin as soon as the first rows of the big arrays arrive.
    for (std::size_t i = 0; i < trace.arrays.size(); ++i) {
        if (trace.arrays[i].isInput)
            inputOrder.push_back(i);
    }
    std::stable_sort(inputOrder.begin(), inputOrder.end(),
                     [this](std::size_t a, std::size_t b) {
                         return trace.arrays[a].sizeBytes <
                                trace.arrays[b].sizeBytes;
                     });

    // Pipelined-DMA page plan: array-major page-sized segments.
    for (std::size_t i : inputOrder) {
        const auto &a = trace.arrays[i];
        for (Addr off = 0; off < a.sizeBytes;
             off += cfg.dma.pageBytes) {
            DmaEngine::Segment seg;
            seg.arrayId = static_cast<int>(i);
            seg.busAddr = arrayDramBase[i] + off;
            seg.arrayOffset = off;
            seg.len = std::min<std::uint64_t>(cfg.dma.pageBytes,
                                              a.sizeBytes - off);
            inputPages.push_back(seg);
        }
    }
}

void
Soc::buildAcpSide()
{
    // Resolve every array's data-movement regime. The all-DMA default
    // leaves the ACP plan empty and the DMA totals equal to the trace
    // totals, so the baseline flow is untouched.
    bool globalAcp = cfg.iface.memType == IfaceMemType::Acp;
    arrayUsesAcp.assign(trace.arrays.size(), globalAcp);
    for (const auto &o : cfg.iface.arrayMemTypes) {
        bool found = false;
        for (std::size_t i = 0; i < trace.arrays.size(); ++i) {
            if (trace.arrays[i].name == o.first) {
                arrayUsesAcp[i] = o.second == IfaceMemType::Acp;
                found = true;
                break;
            }
        }
        if (!found)
            fatal("config: mem_type.%s names no array in this "
                  "workload — check the trace's array list for the "
                  "exact name",
                  o.first.c_str());
    }

    for (std::size_t i = 0; i < trace.arrays.size(); ++i) {
        const auto &a = trace.arrays[i];
        AcpPort::Segment seg;
        seg.arrayId = static_cast<int>(i);
        seg.busAddr = arrayDramBase[i];
        seg.arrayOffset = 0;
        seg.len = a.sizeBytes;
        if (a.isInput) {
            if (arrayUsesAcp[i]) {
                acpInBytes += a.sizeBytes;
                acpInputSegs.push_back(seg);
            } else {
                dmaInBytes += a.sizeBytes;
            }
        }
        if (a.isOutput) {
            if (arrayUsesAcp[i]) {
                acpOutBytes += a.sizeBytes;
                acpOutputSegs.push_back(seg);
            } else {
                dmaOutBytes += a.sizeBytes;
            }
        }
    }

    if (acpInBytes == 0 && acpOutBytes == 0)
        return;

    // ACP-moved arrays never ride the pipelined flush+DMA page plan.
    inputPages.erase(
        std::remove_if(inputPages.begin(), inputPages.end(),
                       [this](const DmaEngine::Segment &p) {
                           return arrayUsesAcp[p.arrayId];
                       }),
        inputPages.end());

    if (cfg.isolated)
        return;

    auto accelClock = ClockDomain::fromMhz(cfg.accelMhz);
    AcpPort::Params ap;
    ap.beatBytes = cfg.cpuLineBytes;
    ap.maxOutstanding = cfg.dma.maxOutstanding;
    acp = std::make_unique<AcpPort>("iface.acp", eventq, accelClock,
                                    *systemBus, ap);

    // The CPU produced the input data and — the whole point of the
    // ACP — never flushed it: its L1 holds the lines dirty, and the
    // port's coherent loads snoop them out cache-to-cache.
    if (cfg.cpuHoldsDirtyInput) {
        auto cpuClock = ClockDomain::fromMhz(cfg.cpuMhz);
        Cache::Params l1p;
        l1p.sizeBytes = cfg.cpuCacheBytes;
        l1p.lineBytes = cfg.cpuLineBytes;
        l1p.assoc = 4;
        l1p.ports = 1;
        cpuL1 = std::make_unique<Cache>("cpu.l1d", eventq, cpuClock,
                                        *systemBus, l1p);
        for (std::size_t i = 0; i < trace.arrays.size(); ++i) {
            const auto &a = trace.arrays[i];
            if (!a.isInput || !arrayUsesAcp[i])
                continue;
            cpuL1->prefill(arrayDramBase[i], a.sizeBytes,
                           /*dirty=*/true);
        }
    }
}

void
Soc::buildCacheSide()
{
    auto accelClock = ClockDomain::fromMhz(cfg.accelMhz);

    Cache::Params cp;
    cp.sizeBytes = cfg.cache.sizeBytes;
    cp.lineBytes = cfg.cache.lineBytes;
    cp.assoc = cfg.cache.assoc;
    cp.ports = cfg.cache.ports;
    cp.mshrs = cfg.cache.mshrs;
    cp.hitLatency = cfg.cache.hitLatency;
    cp.prefetchEnabled = cfg.cache.prefetch;
    cp.perfect = cfg.perfectMemory;
    cacheMem = std::make_unique<Cache>("accel.cache", eventq,
                                       accelClock, *systemBus, cp);

    AladdinTlb::Params tp;
    tp.entries = cfg.tlbEntries;
    tp.missLatency = cfg.tlbMissLatency;
    accelTlb = std::make_unique<AladdinTlb>("accel.tlb", eventq,
                                            accelClock, tp);

    // Private intermediate data stays in scratchpads (Section IV-D),
    // and small tables are register-promoted (Aladdin's complete
    // partitioning). Promoted *shared* arrays still pay for their
    // data movement: they are pulled through the cache line by line
    // before compute starts (warm-up) and pushed back after it ends
    // (drain) — see startAccelerator. Tiny-footprint kernels like aes
    // thus still pay the TLB-miss-then-cold-miss startup the paper
    // describes (Section V-A).
    auto isLocal = [](const ArrayInfo &a) {
        return a.privateScratch ||
               a.sizeBytes / a.wordBytes <=
                   completePartitionWordLimit;
    };
    for (const auto &a : trace.arrays) {
        if (a.privateScratch ||
            a.sizeBytes / a.wordBytes > completePartitionWordLimit)
            continue;
        if (a.isInput)
            cacheWarmupBytes += a.sizeBytes;
        if (a.isOutput)
            cacheDrainBytes += a.sizeBytes;
    }
    bool anyPrivate = false;
    for (const auto &a : trace.arrays)
        anyPrivate = anyPrivate || isLocal(a);
    if (anyPrivate) {
        spad = std::make_unique<Scratchpad>("accel.spad", eventq,
                                            accelClock);
        for (const auto &a : trace.arrays) {
            if (!isLocal(a)) {
                spadIds.push_back(-1);
                continue;
            }
            Scratchpad::ArrayConfig sc;
            sc.name = a.name;
            sc.sizeBytes = a.sizeBytes;
            sc.wordBytes = a.wordBytes;
            sc.partitions = effectiveSpadPartitions(
                a.sizeBytes, a.wordBytes, cfg.spadPartitions);
            sc.portsPerPartition = 1;
            spadIds.push_back(spad->addArray(sc));
        }
    } else {
        spadIds.assign(trace.arrays.size(), -1);
    }

    accel->attachCache(cacheMem.get(), accelTlb.get(), arrayVBase,
                       spad.get(), spadIds);

    // The CPU produced the input data: its L1 holds the most recently
    // written lines dirty, and the accelerator's misses snoop them.
    if (cfg.cpuHoldsDirtyInput && !cfg.isolated) {
        auto cpuClock = ClockDomain::fromMhz(cfg.cpuMhz);
        Cache::Params l1p;
        l1p.sizeBytes = cfg.cpuCacheBytes;
        l1p.lineBytes = cfg.cpuLineBytes;
        l1p.assoc = 4;
        l1p.ports = 1;
        cpuL1 = std::make_unique<Cache>("cpu.l1d", eventq, cpuClock,
                                        *systemBus, l1p);
        for (std::size_t i = 0; i < trace.arrays.size(); ++i) {
            const auto &a = trace.arrays[i];
            if (!a.isInput || a.privateScratch)
                continue;
            // Walk pages in order so physical frames are sequential.
            for (Addr off = 0; off < a.sizeBytes; off += 4096) {
                Addr paddr =
                    accelTlb->translateFunctional(arrayVBase[i] + off);
                std::uint64_t len = std::min<std::uint64_t>(
                    4096, a.sizeBytes - off);
                cpuL1->prefill(paddr, len, /*dirty=*/true);
            }
        }
    }
}

void
Soc::beginInputPhase()
{
    GENIE_ASSERT(cfg.memType == MemInterface::ScratchpadDma,
                 "input phase only exists in DMA mode");

    // Flush/invalidate and the DMA engine move only the DMA-regime
    // bytes; ACP-regime arrays stream in concurrently over the
    // coherency port with no cache-maintenance prerequisite. The
    // all-DMA default makes the ACP part vanish and the DMA part
    // cover the whole trace, reproducing the baseline event-for-event.
    std::uint64_t inBytes = dmaInBytes;
    std::uint64_t outBytes = dmaOutBytes;
    inputPartsPending =
        (inBytes > 0 ? 1u : 0u) + (acpInBytes > 0 ? 1u : 0u);

    auto beat = [this](int arrayId, Addr offset, unsigned len) {
        feBits->fill(arrayId, offset, len);
    };

    if (acpInBytes > 0) {
        acp->startTransaction(
            AcpPort::Direction::MemToAccel, acpInputSegs, beat,
            [this](bool ok) {
                if (!ok)
                    fatal("input ACP burst failed permanently (fault "
                          "retry budget exhausted) — lower "
                          "fault_acp_snoop or raise fault_max_retries");
                if (--inputPartsPending == 0)
                    onInputPhaseDone();
            });
    }

    auto invalidated = [this] {
        outputInvalidated = true;
        if (pendingOutputDma) {
            auto go = std::move(pendingOutputDma);
            pendingOutputDma = nullptr;
            go();
        }
    };

    // The CPU invalidates the output region before the flush in the
    // baseline flow; with pipelined DMA the invalidation is deferred
    // until after the input flush so it overlaps in-flight DMA (it
    // only has to complete before the accelerator's output DMA).
    if (outBytes == 0)
        outputInvalidated = true;
    else if (!cfg.dma.pipelined)
        flush->startInvalidate(outBytes, invalidated);

    if (inBytes == 0) {
        if (outBytes > 0 && cfg.dma.pipelined)
            flush->startInvalidate(outBytes, invalidated);
        if (inputPartsPending == 0) {
            eventq.scheduleFlowIn(0, [this] { onInputPhaseDone(); },
                              "soc.inputDone");
        }
        return;
    }

    if (cfg.dma.pipelined) {
        // One flush chunk and one DMA transaction per page; the DMA of
        // page b may start only once its flush completed, and the
        // engine services pages in order (serial data arrival).
        std::vector<std::uint64_t> chunkSizes;
        chunkSizes.reserve(inputPages.size());
        for (const auto &p : inputPages)
            chunkSizes.push_back(p.len);
        pagesDone = 0;
        std::uint64_t outBytesCopy = outBytes;
        flush->startFlushChunks(
            chunkSizes,
            [this, beat](std::size_t page) {
                dma->startTransaction(
                    DmaEngine::Direction::MemToAccel,
                    {inputPages[page]}, beat, [this](bool ok) {
                        if (!ok)
                            fatal("input DMA page failed permanently "
                                  "(fault retry budget exhausted) — "
                                  "lower fault_dma_beat or raise "
                                  "fault_max_retries");
                        if (++pagesDone == inputPages.size() &&
                            --inputPartsPending == 0)
                            onInputPhaseDone();
                    });
            },
            [this, outBytesCopy, invalidated] {
                if (outBytesCopy > 0)
                    flush->startInvalidate(outBytesCopy, invalidated);
            });
    } else {
        // Baseline: flush everything, then one descriptor chain
        // covering all input arrays (small arrays first).
        flush->startFlush(inBytes, inBytes, nullptr, [this, beat] {
            std::vector<DmaEngine::Segment> segs;
            for (std::size_t i : inputOrder) {
                if (!arrayUsesAcp.empty() && arrayUsesAcp[i])
                    continue;
                const auto &a = trace.arrays[i];
                DmaEngine::Segment seg;
                seg.arrayId = static_cast<int>(i);
                seg.busAddr = arrayDramBase[i];
                seg.arrayOffset = 0;
                seg.len = a.sizeBytes;
                segs.push_back(seg);
            }
            dma->startTransaction(DmaEngine::Direction::MemToAccel,
                                  std::move(segs), beat,
                                  [this](bool ok) {
                                      if (!ok)
                                          fatal("input DMA failed "
                                                "permanently (fault "
                                                "retry budget "
                                                "exhausted)");
                                      if (--inputPartsPending == 0)
                                          onInputPhaseDone();
                                  });
        });
    }
}

void
Soc::onInputPhaseDone()
{
    inputDone = true;
    if (accelStartRequested && !accel->running() &&
        !cfg.dma.triggeredCompute) {
        launchInvocation();
    }
}

Tick
Soc::lineCopyLatency(std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0;
    // One TLB walk up front, then serial line fetches at the DRAM
    // round-trip rate (a register-copy loop has no MLP).
    std::uint64_t lines = divCeil(bytes, cfg.cpuLineBytes);
    return cfg.tlbMissLatency + lines * (250 * tickPerNs);
}

void
Soc::startAccelerator(std::function<void()> onFinish)
{
    pendingFinish = std::move(onFinish);
    accelStartRequested = true;

    if (cfg.memType == MemInterface::Cache && !cfg.isolated) {
        if (invocationsDone == 0) {
            // Pull register-promoted shared inputs through the cache
            // before compute begins (first invocation only; the batch
            // reuses device-resident data).
            eventq.scheduleFlowIn(lineCopyLatency(cacheWarmupBytes),
                              [this] { launchInvocation(); },
                              "soc.cacheWarmup");
            return;
        }
        launchInvocation();
        return;
    }
    if (cfg.memType == MemInterface::Cache || cfg.isolated ||
        cfg.dma.triggeredCompute || inputDone) {
        launchInvocation();
    }
    // Otherwise onInputPhaseDone() will start the datapath.
}

void
Soc::launchInvocation()
{
    // A queued launch retires its ring descriptor; batched
    // invocations enqueued N and ring exactly one doorbell (ioctl).
    if (cmdQueue && !cmdQueue->empty())
        cmdQueue->pop();
    accel->start([this] { onDatapathDone(); });
}

void
Soc::onDatapathDone()
{
    ++invocationsDone;
    if (invocationsDone < cfg.iface.invocations) {
        if (cmdQueue && !cmdQueue->empty()) {
            // Drain the command queue back-to-back: the device moves
            // straight to the next descriptor with no CPU round trip.
            eventq.scheduleFlowIn(0, [this] { launchInvocation(); },
                              "iface.queueNext");
            return;
        }
        // Unqueued batch: complete this ioctl so the driver can issue
        // the next one (one CPU round trip per invocation).
        if (pendingFinish)
            pendingFinish();
        return;
    }
    beginOutputPhase();
}

void
Soc::beginOutputPhase()
{
    if (cfg.memType == MemInterface::ScratchpadDma && !cfg.isolated &&
        (dmaOutBytes > 0 || acpOutBytes > 0)) {
        outputPartsPending =
            (dmaOutBytes > 0 ? 1u : 0u) + (acpOutBytes > 0 ? 1u : 0u);

        // ACP-regime outputs need no prior CPU invalidate: each
        // WriteInvalidate beat drops any cached copy as it lands.
        if (acpOutBytes > 0) {
            acp->startTransaction(
                AcpPort::Direction::AccelToMem, acpOutputSegs, nullptr,
                [this](bool ok) {
                    if (!ok)
                        fatal("output ACP burst failed permanently "
                              "(fault retry budget exhausted) — lower "
                              "fault_acp_snoop or raise "
                              "fault_max_retries");
                    if (--outputPartsPending == 0 && pendingFinish)
                        pendingFinish();
                });
        }
        if (dmaOutBytes == 0)
            return;

        // Stream DMA-regime output arrays back to memory; the output
        // region must have been invalidated from CPU caches first.
        auto startOutput = [this] {
            std::vector<DmaEngine::Segment> segs;
            for (std::size_t i = 0; i < trace.arrays.size(); ++i) {
                const auto &a = trace.arrays[i];
                if (!a.isOutput || arrayUsesAcp[i])
                    continue;
                DmaEngine::Segment seg;
                seg.arrayId = static_cast<int>(i);
                seg.busAddr = arrayDramBase[i];
                seg.arrayOffset = 0;
                seg.len = a.sizeBytes;
                segs.push_back(seg);
            }
            dma->startTransaction(DmaEngine::Direction::AccelToMem,
                                  std::move(segs), nullptr,
                                  [this](bool ok) {
                                      if (!ok)
                                          fatal("output DMA failed "
                                                "permanently (fault "
                                                "retry budget "
                                                "exhausted)");
                                      if (--outputPartsPending == 0 &&
                                          pendingFinish)
                                          pendingFinish();
                                  });
        };
        if (outputInvalidated)
            startOutput();
        else
            pendingOutputDma = startOutput;
        return;
    }
    if (cfg.memType == MemInterface::Cache && !cfg.isolated &&
        cacheDrainBytes > 0) {
        // Push register-promoted shared outputs back via the cache.
        eventq.scheduleFlowIn(lineCopyLatency(cacheDrainBytes),
                              [this] {
            if (pendingFinish)
                pendingFinish();
        }, "soc.cacheDrain");
        return;
    }
    if (pendingFinish)
        pendingFinish();
}

SocResults
Soc::run()
{
    GENIE_ASSERT(!ran, "Soc::run() is one-shot");
    ran = true;

    if (metricsSampler)
        metricsSampler->start();

    bool stalled = false;
    if (cfg.isolated) {
        // Isolated design: the accelerator alone, data preloaded.
        bool done = false;
        accel->start([&] {
            done = true;
            if (progressWatchdog)
                progressWatchdog->disarm();
        });
        if (progressWatchdog)
            progressWatchdog->arm();
        try {
            eventq.run();
        } catch (const SimulationStalledError &) {
            stalled = true;
        }
        GENIE_ASSERT(done || stalled,
                     "isolated datapath did not finish");
        writeTraceOutput();
        writeMetricsOutputs();
        SocResults r = collect(stalled ? eventq.curTick()
                                       : accel->computeBusy().hi());
        r.stalled = stalled;
        return r;
    }

    std::vector<DriverOp> program;
    if (cfg.memType == MemInterface::ScratchpadDma) {
        DriverOp call;
        call.kind = DriverOp::Kind::Call;
        call.callback = [this] { beginInputPhase(); };
        program.push_back(std::move(call));
    }
    const auto waitKind =
        cfg.iface.completion == CompletionMode::Interrupt
            ? DriverOp::Kind::IntrWait
            : DriverOp::Kind::SpinWait;
    if (cmdQueue) {
        // Batched offload: enqueue the whole batch, ring the doorbell
        // once (a single ioctl), and wait for the device to drain the
        // ring back-to-back.
        DriverOp enq;
        enq.kind = DriverOp::Kind::Call;
        enq.callback = [this] {
            for (unsigned i = 0; i < cfg.iface.invocations; ++i)
                cmdQueue->push(0);
        };
        program.push_back(std::move(enq));
        DriverOp ioctlOp;
        ioctlOp.kind = DriverOp::Kind::Ioctl;
        ioctlOp.command = 0;
        program.push_back(std::move(ioctlOp));
        DriverOp wait;
        wait.kind = waitKind;
        program.push_back(std::move(wait));
    } else {
        // One ioctl + wait round trip per invocation (the per-offload
        // initiation cost the command queue exists to amortize).
        for (unsigned i = 0; i < cfg.iface.invocations; ++i) {
            DriverOp ioctlOp;
            ioctlOp.kind = DriverOp::Kind::Ioctl;
            ioctlOp.command = 0;
            program.push_back(std::move(ioctlOp));
            DriverOp wait;
            wait.kind = waitKind;
            program.push_back(std::move(wait));
        }
    }

    bool done = false;
    driver->run(std::move(program), [&] {
        done = true;
        flowEndTick = eventq.curTick();
        // Stop monitoring once the flow completes so the watchdog's
        // self-rescheduling check lets the queue drain (and does not
        // mistake post-flow quiet for a stall).
        if (progressWatchdog)
            progressWatchdog->disarm();
    });
    if (progressWatchdog)
        progressWatchdog->arm();
    try {
        eventq.run();
    } catch (const SimulationStalledError &) {
        // The watchdog already dumped its diagnosis via warn();
        // salvage partial stats so the sweep point is not a total
        // loss.
        stalled = true;
        flowEndTick = eventq.curTick();
    }
    GENIE_ASSERT(done || stalled,
                 "offload flow did not finish (deadlock?)");
    writeTraceOutput();
    writeMetricsOutputs();
    SocResults r = collect(flowEndTick);
    r.stalled = stalled;
    return r;
}

void
Soc::writeTraceOutput()
{
    if (eventTracer && !cfg.tracing.outPath.empty())
        eventTracer->writeChromeJsonFile(cfg.tracing.outPath);
}

void
Soc::writeMetricsOutputs()
{
    if (!cfg.metrics.statsJsonPath.empty())
        writeStatsJsonFile(cfg.metrics.statsJsonPath, registry);
    if (!cfg.metrics.statsCsvPath.empty())
        writeStatsCsvFile(cfg.metrics.statsCsvPath, registry);
    if (metricsSampler) {
        if (!cfg.metrics.samplesJsonPath.empty()) {
            writeSamplesJsonFile(cfg.metrics.samplesJsonPath,
                                 *metricsSampler);
        }
        if (!cfg.metrics.samplesCsvPath.empty()) {
            writeSamplesCsvFile(cfg.metrics.samplesCsvPath,
                                *metricsSampler);
        }
    }
}

RuntimeBreakdown
Soc::computeBreakdown(Tick endTick) const
{
    IntervalSet window;
    window.add(0, endTick);

    const IntervalSet &f = flush->busyIntervals();
    // The ACP is a data-movement engine like the DMA, so its busy time
    // lands in the same breakdown bucket.
    IntervalSet d = dma->busyIntervals();
    if (acp)
        d = d.unionWith(acp->busyIntervals());
    const IntervalSet &c = accel->computeBusy();

    RuntimeBreakdown b;
    b.flushOnly = f.subtract(d).subtract(c).intersectWith(window)
                      .measure();
    b.dmaFlush = d.subtract(c).intersectWith(window).measure();
    b.computeDma = c.intersectWith(d).intersectWith(window).measure();
    b.computeOnly = c.subtract(d).intersectWith(window).measure();
    Tick accounted =
        b.flushOnly + b.dmaFlush + b.computeDma + b.computeOnly;
    b.other = endTick > accounted ? endTick - accounted : 0;
    return b;
}

void
Soc::computeEnergy(SocResults &r) const
{
    double dynamic = 0.0;

    // Functional units.
    static constexpr FuKind kinds[] = {FuKind::IntAlu, FuKind::IntMul,
                                       FuKind::FpAdd, FuKind::FpMul,
                                       FuKind::FpDiv, FuKind::Other};
    const auto &ops = accel->fuOpCounts();
    for (std::size_t i = 0; i < 6; ++i) {
        dynamic += static_cast<double>(ops[i]) *
                   EnergyModel::opEnergy(kinds[i]);
    }

    double leakMw =
        static_cast<double>(cfg.lanes) * EnergyModel::laneLeakage();

    // Scratchpads: per-array bank sizing.
    if (spad) {
        for (std::size_t i = 0; i < trace.arrays.size(); ++i) {
            if (spadIds[i] < 0)
                continue;
            const auto &sc = spad->arrayConfig(spadIds[i]);
            double bankKb = static_cast<double>(sc.sizeBytes) /
                            sc.partitions / 1024.0;
            double xbar =
                EnergyModel::spadCrossbarEnergy(sc.partitions);
            dynamic +=
                static_cast<double>(spad->arrayReads(spadIds[i])) *
                (EnergyModel::sramAccessEnergy(bankKb, false) + xbar);
            dynamic +=
                static_cast<double>(spad->arrayWrites(spadIds[i])) *
                (EnergyModel::sramAccessEnergy(bankKb, true) + xbar);
            leakMw += EnergyModel::sramLeakage(
                static_cast<double>(sc.sizeBytes) / 1024.0,
                sc.partitions);
        }
    }

    // Accelerator cache + TLB.
    if (cacheMem) {
        double sizeKb = cfg.cache.sizeBytes / 1024.0;
        const StatGroup &cs = cacheMem->stats();
        double reads = cs.get("reads");
        double writesAndFills = cs.get("writes") + cs.get("misses") +
                                cs.get("prefetches");
        dynamic += reads * EnergyModel::cacheAccessEnergy(
                               sizeKb, cfg.cache.assoc,
                               cfg.cache.ports, false);
        dynamic += writesAndFills * EnergyModel::cacheAccessEnergy(
                                        sizeKb, cfg.cache.assoc,
                                        cfg.cache.ports, true);
        leakMw += EnergyModel::cacheLeakage(sizeKb, cfg.cache.assoc,
                                            cfg.cache.ports);
    }
    if (accelTlb) {
        const StatGroup &ts = accelTlb->stats();
        double lookups = ts.get("hits") + ts.get("misses");
        dynamic += lookups * EnergyModel::tlbAccessEnergy(
                                 cfg.tlbEntries);
        dynamic += ts.get("misses") * 20.0; // page table walk
        leakMw += EnergyModel::tlbLeakage(cfg.tlbEntries);
    }

    // DMA path and ready bits.
    if (!cfg.isolated && cfg.memType == MemInterface::ScratchpadDma) {
        dynamic += dma->bytesTransferred() *
                   EnergyModel::dmaPerByteEnergy();
        // ACP beats pay the same per-byte movement energy as DMA
        // beats; what they save is the flush, not the transfer.
        if (acp) {
            dynamic += acp->bytesTransferred() *
                       EnergyModel::dmaPerByteEnergy();
        }
        if (cfg.dma.triggeredCompute && feBits) {
            dynamic += (feBits->fills() + feBits->stalls()) *
                       EnergyModel::readyBitAccessEnergy();
            leakMw += EnergyModel::readyBitLeakage(
                feBits->storageBits());
        }
    }

    double seconds = static_cast<double>(r.totalTicks) * 1e-12;
    double leakagePj = leakMw * 1e-3 * seconds * 1e12;

    r.dynamicPj = dynamic;
    r.leakagePj = leakagePj;
    r.energyPj = dynamic + leakagePj;
    r.avgPowerMw =
        seconds > 0 ? r.energyPj * 1e-12 / seconds * 1e3 : 0.0;
    r.edp = r.energyPj * 1e-12 * seconds;
}

SocResults
Soc::collect(Tick endTick)
{
    SocResults r;
    r.totalTicks = endTick;
    r.accelCycles = accel->executedCycles();
    r.breakdown = computeBreakdown(endTick);
    r.lanes = cfg.lanes;

    if (cacheMem) {
        r.cacheMissRate = cacheMem->missRate();
        r.localSramBytes = cfg.cache.sizeBytes +
                           (spad ? spad->totalBytes() : 0);
        r.localMemBandwidthBytesPerCycle =
            static_cast<double>(cfg.cache.ports) * 8.0 +
            (spad ? static_cast<double>(
                        spad->peakAccessesPerCycle() * 4)
                  : 0.0);
    }
    if (cfg.memType == MemInterface::ScratchpadDma && spad) {
        r.localSramBytes = spad->totalBytes();
        double bw = 0.0;
        for (std::size_t i = 0; i < trace.arrays.size(); ++i) {
            const auto &sc = spad->arrayConfig(spadIds[i]);
            bw += static_cast<double>(sc.partitions *
                                      sc.portsPerPartition *
                                      sc.wordBytes);
        }
        r.localMemBandwidthBytesPerCycle = bw;
        r.spadConflicts =
            static_cast<std::uint64_t>(spad->conflicts());
    }
    if (accelTlb)
        r.tlbHitRate = accelTlb->hitRate();
    r.dramRowHitRate = dramCtrl->rowHitRate();
    r.busUtilization =
        endTick > 0 ? static_cast<double>(systemBus->busyTicks()) /
                          static_cast<double>(endTick)
                    : 0.0;
    r.dmaBytes = static_cast<std::uint64_t>(dma->bytesTransferred());
    if (acp) {
        // Report all explicit data movement, whichever engine did it.
        r.dmaBytes +=
            static_cast<std::uint64_t>(acp->bytesTransferred());
    }
    r.readyBitStalls =
        static_cast<std::uint64_t>(accel->stats().get("readyBitStalls"));
    r.cacheToCacheTransfers = static_cast<std::uint64_t>(
        systemBus->stats().get("cacheToCache"));

    computeEnergy(r);
    return r;
}

SocResults
runDesign(const SocConfig &config, const Trace &trace, const Dddg &dddg)
{
    Soc soc(config, trace, dddg);
    return soc.run();
}

} // namespace genie
