#include "multi_soc.hh"

#include "core/validation.hh"
#include "sim/logging.hh"

namespace genie
{

/** One accelerator's private slice of the system. */
struct MultiSoc::Complex
{
    const Trace *trace = nullptr;
    const Dddg *dddg = nullptr;
    SocConfig design;

    std::unique_ptr<Scratchpad> spad;
    std::unique_ptr<FullEmptyBits> feBits;
    std::unique_ptr<Cache> cache;
    std::unique_ptr<AladdinTlb> tlb;
    std::unique_ptr<Datapath> datapath;

    std::vector<Addr> arrayDramBase;
    std::vector<Addr> arrayVBase;
    std::vector<int> spadIds;
    std::vector<int> feIds;

    bool inputDone = false;
    bool finished = false;
    Tick finishTick = 0;
};

MultiSoc::MultiSoc(SocConfig platformCfg,
                   std::vector<AcceleratorSpec> specs_)
    : platform(std::move(platformCfg)), specs(std::move(specs_))
{
    if (specs.empty())
        fatal("MultiSoc needs at least one accelerator");
    validateSocConfig(platform);
    for (const auto &spec : specs)
        validateSocConfig(spec.design);

    eventq.setStatRegistry(&registry);
    if (platform.tracing.enabled) {
        eventTracer = std::make_unique<Tracer>(
            eventq, platform.tracing.categories);
        eventq.setTracer(eventTracer.get());
    }

    auto busClock = ClockDomain::fromMhz(platform.busMhz);
    auto accelClock = ClockDomain::fromMhz(platform.accelMhz);

    SystemBus::Params busParams;
    busParams.widthBits = platform.busWidthBits;
    systemBus = std::make_unique<SystemBus>("system.bus", eventq,
                                            busClock, busParams);
    dramCtrl = std::make_unique<DramCtrl>("system.dram", eventq,
                                          busClock, *systemBus,
                                          DramCtrl::Params{});
    systemBus->setTarget(dramCtrl.get());

    FlushEngine::Params fp;
    fp.flushPerLine = platform.flushPerLine;
    fp.invalidatePerLine = platform.invalidatePerLine;
    fp.lineBytes = platform.cpuLineBytes;
    flush = std::make_unique<FlushEngine>("cpu.flush", eventq, fp);

    DmaEngine::Params dp;
    dp.beatBytes = platform.cpuLineBytes;
    dma = std::make_unique<DmaEngine>("system.dma", eventq,
                                      accelClock, *systemBus, dp);

    for (std::size_t i = 0; i < specs.size(); ++i)
        buildComplex(i);
}

MultiSoc::~MultiSoc() = default;

void
MultiSoc::buildComplex(std::size_t index)
{
    const AcceleratorSpec &spec = specs[index];
    GENIE_ASSERT(spec.trace != nullptr && spec.dddg != nullptr,
                 "accelerator %zu has no trace", index);

    auto cx = std::make_unique<Complex>();
    cx->trace = spec.trace;
    cx->dddg = spec.dddg;
    cx->design = spec.design;

    auto accelClock = ClockDomain::fromMhz(platform.accelMhz);
    std::string prefix = format("accel%zu", index);

    // Address layout: each accelerator gets a disjoint 256 MB slice.
    Addr dramBase = 0x40000000 + static_cast<Addr>(index) * 0x10000000;
    Addr nextDram = dramBase;
    Addr nextV = 0;
    for (const auto &a : cx->trace->arrays) {
        cx->arrayDramBase.push_back(nextDram);
        cx->arrayVBase.push_back(nextV);
        Addr span = alignUp(a.sizeBytes, 4096);
        nextDram += span;
        nextV += span;
    }

    Datapath::Params dpp;
    dpp.lanes = cx->design.lanes;
    auto mode = cx->design.memType == MemInterface::ScratchpadDma
                    ? Datapath::MemMode::ScratchpadDma
                    : Datapath::MemMode::Cache;
    cx->datapath = std::make_unique<Datapath>(
        prefix + ".datapath", eventq, accelClock, *cx->trace,
        *cx->dddg, dpp, mode);

    if (cx->design.memType == MemInterface::ScratchpadDma) {
        cx->spad = std::make_unique<Scratchpad>(prefix + ".spad",
                                                eventq, accelClock);
        cx->feBits = std::make_unique<FullEmptyBits>(
            prefix + ".readyBits", platform.cpuLineBytes);
        registry.registerGroup(cx->feBits->stats());
        for (const auto &a : cx->trace->arrays) {
            Scratchpad::ArrayConfig sc;
            sc.name = a.name;
            sc.sizeBytes = a.sizeBytes;
            sc.wordBytes = a.wordBytes;
            sc.partitions = effectiveSpadPartitions(
                a.sizeBytes, a.wordBytes,
                cx->design.spadPartitions);
            cx->spadIds.push_back(cx->spad->addArray(sc));
            int feId = cx->feBits->addArray(a.sizeBytes);
            bool tracked =
                cx->design.dma.triggeredCompute && a.isInput;
            cx->feIds.push_back(tracked ? feId : -1);
            if (!tracked)
                cx->feBits->fill(feId, 0, a.sizeBytes);
        }
        cx->datapath->attachScratchpad(cx->spad.get(), cx->spadIds,
                                       cx->feBits.get(), cx->feIds);
    } else {
        Cache::Params cp;
        cp.sizeBytes = cx->design.cache.sizeBytes;
        cp.lineBytes = cx->design.cache.lineBytes;
        cp.assoc = cx->design.cache.assoc;
        cp.ports = cx->design.cache.ports;
        cp.mshrs = cx->design.cache.mshrs;
        cp.prefetchEnabled = cx->design.cache.prefetch;
        cx->cache = std::make_unique<Cache>(prefix + ".cache", eventq,
                                            accelClock, *systemBus,
                                            cp);
        AladdinTlb::Params tp;
        tp.entries = cx->design.tlbEntries;
        tp.missLatency = cx->design.tlbMissLatency;
        tp.physBase = 0x10000000 + static_cast<Addr>(index) *
                                       0x08000000;
        cx->tlb = std::make_unique<AladdinTlb>(prefix + ".tlb",
                                               eventq, accelClock,
                                               tp);
        cx->spadIds.assign(cx->trace->arrays.size(), -1);
        cx->datapath->attachCache(cx->cache.get(), cx->tlb.get(),
                                  cx->arrayVBase, nullptr,
                                  cx->spadIds);
    }

    complexes.push_back(std::move(cx));
}

void
MultiSoc::startComplex(std::size_t index)
{
    Complex &cx = *complexes[index];
    if (cx.design.memType == MemInterface::Cache) {
        cx.datapath->start(
            [this, index] { onComplexDatapathDone(index); });
        return;
    }

    // DMA flow: flush this accelerator's inputs (the shared CPU
    // serializes flushes across accelerators), then one transaction
    // per input array through the shared DMA engine.
    std::uint64_t inBytes = cx.trace->totalInputBytes();
    auto kickDma = [this, index] {
        Complex &c = *complexes[index];
        std::vector<DmaEngine::Segment> segs;
        for (std::size_t i = 0; i < c.trace->arrays.size(); ++i) {
            const auto &a = c.trace->arrays[i];
            if (!a.isInput)
                continue;
            segs.push_back({static_cast<int>(i), c.arrayDramBase[i],
                            0, a.sizeBytes});
        }
        dma->startTransaction(
            DmaEngine::Direction::MemToAccel, std::move(segs),
            [this, index](int arrayId, Addr off, unsigned len) {
                complexes[index]->feBits->fill(arrayId, off, len);
            },
            [this, index](bool ok) {
                if (!ok)
                    fatal("complex %zu input DMA failed permanently "
                          "(fault retry budget exhausted)",
                          index);
                onComplexInputDone(index);
            });
    };
    if (inBytes == 0) {
        eventq.scheduleFlowIn(
            0, [this, index] { onComplexInputDone(index); },
            "soc.inputDone");
    } else {
        flush->startFlush(inBytes, inBytes, nullptr, kickDma);
    }
    if (cx.design.dma.triggeredCompute) {
        cx.datapath->start(
            [this, index] { onComplexDatapathDone(index); });
    }
}

void
MultiSoc::onComplexInputDone(std::size_t index)
{
    Complex &cx = *complexes[index];
    cx.inputDone = true;
    if (!cx.design.dma.triggeredCompute && !cx.datapath->running()) {
        cx.datapath->start(
            [this, index] { onComplexDatapathDone(index); });
    }
}

void
MultiSoc::onComplexDatapathDone(std::size_t index)
{
    Complex &cx = *complexes[index];
    if (cx.design.memType == MemInterface::ScratchpadDma &&
        cx.trace->totalOutputBytes() > 0) {
        std::vector<DmaEngine::Segment> segs;
        for (std::size_t i = 0; i < cx.trace->arrays.size(); ++i) {
            const auto &a = cx.trace->arrays[i];
            if (!a.isOutput)
                continue;
            segs.push_back({static_cast<int>(i),
                            cx.arrayDramBase[i], 0, a.sizeBytes});
        }
        dma->startTransaction(DmaEngine::Direction::AccelToMem,
                              std::move(segs), nullptr,
                              [this, index](bool ok) {
                                  if (!ok)
                                      fatal("complex %zu output DMA "
                                            "failed permanently",
                                            index);
                                  finishComplex(index);
                              });
        return;
    }
    finishComplex(index);
}

void
MultiSoc::finishComplex(std::size_t index)
{
    Complex &cx = *complexes[index];
    GENIE_ASSERT(!cx.finished, "accelerator %zu finished twice",
                 index);
    cx.finished = true;
    cx.finishTick = eventq.curTick();
    GENIE_ASSERT(remaining > 0, "finish with none remaining");
    --remaining;
}

MultiSocResults
MultiSoc::run()
{
    GENIE_ASSERT(!ran, "MultiSoc::run() is one-shot");
    ran = true;
    remaining = complexes.size();
    for (std::size_t i = 0; i < complexes.size(); ++i)
        startComplex(i);
    eventq.run();
    GENIE_ASSERT(remaining == 0,
                 "multi-accelerator flow did not finish");

    if (eventTracer && !platform.tracing.outPath.empty())
        eventTracer->writeChromeJsonFile(platform.tracing.outPath);

    MultiSocResults r;
    for (const auto &cx : complexes) {
        AcceleratorResult ar;
        ar.finishTick = cx->finishTick;
        ar.accelCycles = cx->datapath->executedCycles();
        r.accelerators.push_back(ar);
        r.totalTicks = std::max(r.totalTicks, cx->finishTick);
    }
    r.busUtilization =
        r.totalTicks > 0
            ? static_cast<double>(systemBus->busyTicks()) /
                  static_cast<double>(r.totalTicks)
            : 0.0;
    return r;
}

} // namespace genie
