/**
 * @file
 * The full SoC/accelerator design-parameter space (the paper's
 * Figure 3 table) plus the study switches used by the evaluation.
 */

#ifndef GENIE_CORE_SOC_CONFIG_HH
#define GENIE_CORE_SOC_CONFIG_HH

#include <cstdint>
#include <string>

#include "fault/fault_config.hh"
#include "iface/iface_config.hh"
#include "metrics/metrics_config.hh"
#include "sim/queue_strategy.hh"
#include "sim/types.hh"
#include "trace/tracer.hh"

namespace genie
{

/** The accelerator's local memory interface. */
enum class MemInterface : std::uint8_t
{
    ScratchpadDma, ///< private scratchpads filled by DMA
    Cache,         ///< hardware-managed coherent cache
};

constexpr const char *
memInterfaceName(MemInterface m)
{
    return m == MemInterface::ScratchpadDma ? "dma" : "cache";
}

/** DMA latency optimizations (Section IV-B). */
struct DmaOptions
{
    /** Overlap flush of page b+1 with DMA of page b. */
    bool pipelined = false;
    /** Full/empty ready bits: start compute before DMA finishes. */
    bool triggeredCompute = false;
    /** Page granularity for pipelined flush/DMA chunking. */
    unsigned pageBytes = 4096;
    /** Fixed per-transaction setup (accelerator cycles). */
    Cycles setupCycles = 40;
    /** Beats kept in flight by the engine. */
    unsigned maxOutstanding = 8;
};

/** Accelerator cache parameters (Figure 3 sweep values). */
struct CacheOptions
{
    unsigned sizeBytes = 16 * 1024; ///< 2..64 KB
    unsigned lineBytes = 64;        ///< 16/32/64 B
    unsigned assoc = 4;             ///< 4/8
    unsigned ports = 1;             ///< 1/2/4/8
    unsigned mshrs = 16;
    Cycles hitLatency = 1;
    bool prefetch = true;           ///< strided prefetcher
};

/**
 * Aladdin's array-partitioning optimization: small arrays (constant
 * tables, coefficient vectors) are *completely* partitioned — every
 * word becomes its own register-like bank — while large arrays use
 * the swept cyclic partitioning factor.
 */
constexpr unsigned completePartitionWordLimit = 64;

constexpr unsigned
effectiveSpadPartitions(std::uint64_t sizeBytes, unsigned wordBytes,
                        unsigned configured)
{
    std::uint64_t words = sizeBytes / wordBytes;
    if (words > 0 && words <= completePartitionWordLimit)
        return static_cast<unsigned>(words);
    return configured;
}

/** One complete design point. */
struct SocConfig
{
    MemInterface memType = MemInterface::ScratchpadDma;

    /** Datapath lanes: 1..16. */
    unsigned lanes = 4;
    /** Scratchpad partitions per array: 1..16. */
    unsigned spadPartitions = 1;

    DmaOptions dma;
    CacheOptions cache;

    /** System bus width: 32 or 64 bits. */
    unsigned busWidthBits = 32;

    /** Clocks. The accelerator runs at 100 MHz, the frequency at
     * which a 4 KB flush and a 4 KB DMA balance on the Zedboard
     * (Section IV-B1). */
    std::uint64_t accelMhz = 100;
    std::uint64_t cpuMhz = 667;
    std::uint64_t busMhz = 100;

    /** Accelerator TLB. */
    unsigned tlbEntries = 8;
    Tick tlbMissLatency = 200 * tickPerNs;

    /** Characterized CPU cache maintenance costs. */
    Tick flushPerLine = 84 * tickPerNs;
    Tick invalidatePerLine = 71 * tickPerNs;
    unsigned cpuLineBytes = 64;

    /** CPU L1 holding freshly produced (dirty) input data; in cache
     * mode the accelerator's misses snoop it. */
    unsigned cpuCacheBytes = 32 * 1024;
    bool cpuHoldsDirtyInput = true;

    /** Event-queue pending-set strategy (Genie-Turbo). A host-speed
     * knob only: every strategy retires events in the identical
     * (when, seq) order, so it is deliberately excluded from the
     * canonical config key, the fingerprint and configToOptions() —
     * records, goldens and sweep caches stay byte-identical across
     * strategies (tests/test_queue_diff.cc). */
    QueueStrategy queue = QueueStrategy::Ladder;

    /** Event tracing (observability only; never affects results). */
    TraceConfig tracing;

    /** Metrics sampling and export (observability only; never
     * affects results). */
    MetricsConfig metrics;

    /** Fault campaign + watchdog (Genie-Resilience). All-zero rates
     * (the default) construct no injector at all, so a zero-rate
     * campaign is byte-identical to a fault-free run. */
    FaultConfig faults;

    /** SoC-interface regime (Genie-Iface): completion mode, ACP
     * vs DMA data movement, command queue. Defaults select the
     * paper's baseline (spin + DMA + no queue) and construct no
     * iface component, keeping default runs byte-identical to a
     * pre-iface build. iface.memType is kept in sync with memType by
     * the mem=/mem_type= config keys. */
    IfaceConfig iface;

    // ---- Study switches (not hardware knobs) ----

    /** Design the accelerator in isolation: data preloaded, runtime
     * and energy cover the compute phase only (Figure 1 baseline). */
    bool isolated = false;
    /** Figure-7 decomposition step 1: single-cycle perfect memory. */
    bool perfectMemory = false;
    /** Figure-7 decomposition step 2: unlimited bus bandwidth. */
    bool infiniteBandwidth = false;

    /** Short human-readable description. */
    std::string describe() const;
};

} // namespace genie

#endif // GENIE_CORE_SOC_CONFIG_HH
