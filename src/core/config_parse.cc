#include "config_parse.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace genie
{

namespace
{

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "1" || value == "true" || value == "on")
        return true;
    if (value == "0" || value == "false" || value == "off")
        return false;
    fatal("option %s: expected a boolean, got '%s'", key.c_str(),
          value.c_str());
}

unsigned
parseUnsigned(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        fatal("option %s: expected a number, got '%s'", key.c_str(),
              value.c_str());
    return static_cast<unsigned>(v);
}

std::uint64_t
parseU64(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        fatal("option %s: expected a number, got '%s'", key.c_str(),
              value.c_str());
    return static_cast<std::uint64_t>(v);
}

double
parseRate(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        fatal("option %s: expected a probability, got '%s'",
              key.c_str(), value.c_str());
    if (v < 0.0 || v > 1.0)
        fatal("option %s: probability %g outside [0, 1]", key.c_str(),
              v);
    return v;
}

} // namespace

void
applyConfigOption(SocConfig &config, const std::string &option)
{
    auto eq = option.find('=');
    if (eq == std::string::npos)
        fatal("malformed option '%s' (expected key=value)",
              option.c_str());
    std::string key = option.substr(0, eq);
    std::string value = option.substr(eq + 1);

    if (key == "mem") {
        if (value == "dma") {
            config.memType = MemInterface::ScratchpadDma;
            config.iface.memType = IfaceMemType::Dma;
        } else if (value == "cache") {
            config.memType = MemInterface::Cache;
            config.iface.memType = IfaceMemType::Cache;
        } else {
            fatal("option mem: expected dma|cache, got '%s'",
                  value.c_str());
        }
    } else if (key == "mem_type") {
        // Superset of mem= that adds the ACP regime; both keys keep
        // memType and iface.memType in sync (latest wins).
        if (value == "dma") {
            config.memType = MemInterface::ScratchpadDma;
            config.iface.memType = IfaceMemType::Dma;
        } else if (value == "acp") {
            config.memType = MemInterface::ScratchpadDma;
            config.iface.memType = IfaceMemType::Acp;
        } else if (value == "cache") {
            config.memType = MemInterface::Cache;
            config.iface.memType = IfaceMemType::Cache;
        } else {
            fatal("option mem_type: expected dma|acp|cache, got '%s'",
                  value.c_str());
        }
    } else if (key.rfind("mem_type.", 0) == 0) {
        std::string arrayName = key.substr(9);
        if (arrayName.empty())
            fatal("option mem_type.: missing array name (expected "
                  "mem_type.<array>=dma|acp)");
        IfaceMemType t;
        if (value == "dma")
            t = IfaceMemType::Dma;
        else if (value == "acp")
            t = IfaceMemType::Acp;
        else
            fatal("option %s: expected dma|acp per array (cache is a "
                  "whole-accelerator regime), got '%s'",
                  key.c_str(), value.c_str());
        // Latest override for one array wins.
        bool replaced = false;
        for (auto &o : config.iface.arrayMemTypes) {
            if (o.first == arrayName) {
                o.second = t;
                replaced = true;
                break;
            }
        }
        if (!replaced)
            config.iface.arrayMemTypes.emplace_back(arrayName, t);
    } else if (key == "completion") {
        if (value == "spin")
            config.iface.completion = CompletionMode::Spin;
        else if (value == "interrupt")
            config.iface.completion = CompletionMode::Interrupt;
        else
            fatal("option completion: expected spin|interrupt, got "
                  "'%s'",
                  value.c_str());
    } else if (key == "queue_depth") {
        config.iface.queueDepth = parseUnsigned(key, value);
    } else if (key == "invocations") {
        config.iface.invocations = parseUnsigned(key, value);
    } else if (key == "irq_latency_ns") {
        config.iface.irqLatency = parseU64(key, value) * tickPerNs;
    } else if (key == "lanes") {
        config.lanes = parseUnsigned(key, value);
    } else if (key == "partitions") {
        config.spadPartitions = parseUnsigned(key, value);
    } else if (key == "bus") {
        config.busWidthBits = parseUnsigned(key, value);
    } else if (key == "pipelined") {
        config.dma.pipelined = parseBool(key, value);
    } else if (key == "triggered") {
        config.dma.triggeredCompute = parseBool(key, value);
    } else if (key == "cache_kb") {
        config.cache.sizeBytes = parseUnsigned(key, value) * 1024;
    } else if (key == "cache_line") {
        config.cache.lineBytes = parseUnsigned(key, value);
    } else if (key == "cache_assoc") {
        config.cache.assoc = parseUnsigned(key, value);
    } else if (key == "cache_ports") {
        config.cache.ports = parseUnsigned(key, value);
    } else if (key == "cache_mshrs") {
        config.cache.mshrs = parseUnsigned(key, value);
    } else if (key == "prefetch") {
        config.cache.prefetch = parseBool(key, value);
    } else if (key == "tlb_entries") {
        config.tlbEntries = parseUnsigned(key, value);
    } else if (key == "isolated") {
        config.isolated = parseBool(key, value);
    } else if (key == "perfect_mem") {
        config.perfectMemory = parseBool(key, value);
    } else if (key == "inf_bw") {
        config.infiniteBandwidth = parseBool(key, value);
    } else if (key == "accel_mhz") {
        config.accelMhz = parseUnsigned(key, value);
    } else if (key == "cpu_mhz") {
        config.cpuMhz = parseUnsigned(key, value);
    } else if (key == "bus_mhz") {
        config.busMhz = parseUnsigned(key, value);
    } else if (key == "trace") {
        config.tracing.enabled = parseBool(key, value);
    } else if (key == "trace_out") {
        config.tracing.outPath = value;
        config.tracing.enabled = true;
    } else if (key == "trace_categories") {
        config.tracing.categories = parseTraceCategories(value);
    } else if (key == "sample_period") {
        config.metrics.samplePeriod = parseUnsigned(key, value);
    } else if (key == "sample_capacity") {
        config.metrics.sampleCapacity = parseUnsigned(key, value);
    } else if (key == "stats_json") {
        config.metrics.statsJsonPath = value;
    } else if (key == "stats_csv") {
        config.metrics.statsCsvPath = value;
    } else if (key == "samples_json") {
        config.metrics.samplesJsonPath = value;
    } else if (key == "samples_csv") {
        config.metrics.samplesCsvPath = value;
    } else if (key == "fault_seed") {
        config.faults.seed = parseU64(key, value);
    } else if (key == "fault_dram_read") {
        config.faults.rates[static_cast<unsigned>(
            FaultSite::DramRead)] = parseRate(key, value);
    } else if (key == "fault_bus_resp") {
        config.faults.rates[static_cast<unsigned>(
            FaultSite::BusResp)] = parseRate(key, value);
    } else if (key == "fault_dma_beat") {
        config.faults.rates[static_cast<unsigned>(
            FaultSite::DmaBeat)] = parseRate(key, value);
    } else if (key == "fault_tlb_walk") {
        config.faults.rates[static_cast<unsigned>(
            FaultSite::TlbWalk)] = parseRate(key, value);
    } else if (key == "fault_acp_snoop") {
        config.faults.rates[static_cast<unsigned>(
            FaultSite::AcpSnoop)] = parseRate(key, value);
    } else if (key == "fault_irq_drop") {
        config.faults.rates[static_cast<unsigned>(
            FaultSite::IrqDrop)] = parseRate(key, value);
    } else if (key == "fault_max_retries") {
        config.faults.maxRetries = parseUnsigned(key, value);
    } else if (key == "fault_backoff") {
        config.faults.backoffCycles = parseUnsigned(key, value);
    } else if (key == "watchdog_interval") {
        config.faults.watchdogCycles = parseU64(key, value);
    } else if (key == "queue") {
        // Host-speed knob only (Genie-Turbo): never rendered back by
        // configToOptions() and never part of the canonical key, so
        // records, goldens and sweep caches are identical across
        // strategies.
        config.queue = parseQueueStrategy(value);
    } else {
        fatal("unknown option '%s'", key.c_str());
    }
}

SocConfig
parseConfig(const std::vector<std::string> &options)
{
    SocConfig config;
    for (const auto &opt : options)
        applyConfigOption(config, opt);
    return config;
}

std::string
configToOptions(const SocConfig &c)
{
    std::string s = format(
        "mem=%s lanes=%u partitions=%u bus=%u pipelined=%d "
        "triggered=%d cache_kb=%u cache_line=%u cache_assoc=%u "
        "cache_ports=%u cache_mshrs=%u prefetch=%d tlb_entries=%u "
        "isolated=%d perfect_mem=%d inf_bw=%d accel_mhz=%u "
        "cpu_mhz=%u bus_mhz=%u",
        memInterfaceName(c.memType), c.lanes, c.spadPartitions,
        c.busWidthBits, c.dma.pipelined ? 1 : 0,
        c.dma.triggeredCompute ? 1 : 0, c.cache.sizeBytes / 1024,
        c.cache.lineBytes, c.cache.assoc, c.cache.ports,
        c.cache.mshrs, c.cache.prefetch ? 1 : 0, c.tlbEntries,
        c.isolated ? 1 : 0, c.perfectMemory ? 1 : 0,
        c.infiniteBandwidth ? 1 : 0,
        static_cast<unsigned>(c.accelMhz),
        static_cast<unsigned>(c.cpuMhz),
        static_cast<unsigned>(c.busMhz));
    // Iface keys render only when non-default, so a baseline config's
    // options (and the canonical keys/goldens derived from them) are
    // byte-identical to a pre-iface build. mem= already encodes the
    // dma/cache regimes; acp is the only global mem_type to render.
    if (c.iface.memType == IfaceMemType::Acp)
        s += " mem_type=acp";
    for (const auto &o : c.iface.arrayMemTypes) {
        s += format(" mem_type.%s=%s", o.first.c_str(),
                    ifaceMemTypeName(o.second));
    }
    if (c.iface.completion == CompletionMode::Interrupt)
        s += " completion=interrupt";
    if (c.iface.queueDepth > 0)
        s += format(" queue_depth=%u", c.iface.queueDepth);
    if (c.iface.invocations != 1)
        s += format(" invocations=%u", c.iface.invocations);
    if (c.iface.irqLatency != 1000 * tickPerNs) {
        s += format(" irq_latency_ns=%llu",
                    (unsigned long long)(c.iface.irqLatency /
                                         tickPerNs));
    }
    if (c.tracing.enabled) {
        s += format(" trace=1 trace_categories=%s",
                    traceCategoriesToString(c.tracing.categories)
                        .c_str());
        if (!c.tracing.outPath.empty())
            s += format(" trace_out=%s", c.tracing.outPath.c_str());
    }
    if (c.metrics.samplePeriod > 0) {
        s += format(" sample_period=%llu",
                    (unsigned long long)c.metrics.samplePeriod);
    }
    if (!c.metrics.statsJsonPath.empty())
        s += format(" stats_json=%s", c.metrics.statsJsonPath.c_str());
    if (!c.metrics.statsCsvPath.empty())
        s += format(" stats_csv=%s", c.metrics.statsCsvPath.c_str());
    if (!c.metrics.samplesJsonPath.empty()) {
        s += format(" samples_json=%s",
                    c.metrics.samplesJsonPath.c_str());
    }
    if (!c.metrics.samplesCsvPath.empty()) {
        s += format(" samples_csv=%s",
                    c.metrics.samplesCsvPath.c_str());
    }
    if (c.faults.anyEnabled()) {
        // %.17g round-trips any double exactly, so re-parsing the
        // rendered options reproduces the campaign bit-for-bit.
        s += format(" fault_seed=%llu fault_dram_read=%.17g "
                    "fault_bus_resp=%.17g fault_dma_beat=%.17g "
                    "fault_tlb_walk=%.17g fault_acp_snoop=%.17g "
                    "fault_irq_drop=%.17g fault_max_retries=%u "
                    "fault_backoff=%u",
                    (unsigned long long)c.faults.seed,
                    c.faults.rate(FaultSite::DramRead),
                    c.faults.rate(FaultSite::BusResp),
                    c.faults.rate(FaultSite::DmaBeat),
                    c.faults.rate(FaultSite::TlbWalk),
                    c.faults.rate(FaultSite::AcpSnoop),
                    c.faults.rate(FaultSite::IrqDrop),
                    c.faults.maxRetries, c.faults.backoffCycles);
    }
    if (c.faults.watchdogCycles > 0) {
        s += format(" watchdog_interval=%llu",
                    (unsigned long long)c.faults.watchdogCycles);
    }
    return s;
}

} // namespace genie
