#include "validation.hh"

#include <algorithm>
#include <array>

#include "accel/datapath.hh"
#include "sim/logging.hh"

namespace genie
{

void
validateSocConfig(const SocConfig &cfg)
{
    if (cfg.lanes == 0)
        fatal("config: lanes=0 — the datapath needs at least one "
              "lane (lanes=1..16)");
    if (cfg.spadPartitions == 0)
        fatal("config: partitions=0 — each array needs at least one "
              "scratchpad partition (partitions=1..16)");
    if (cfg.busWidthBits == 0 || cfg.busWidthBits % 8 != 0)
        fatal("config: bus=%u bits — the bus width must be a "
              "positive multiple of 8 (the paper sweeps 32 and 64)",
              cfg.busWidthBits);
    if (cfg.accelMhz == 0 || cfg.cpuMhz == 0 || cfg.busMhz == 0)
        fatal("config: a clock is 0 MHz (accel_mhz=%llu cpu_mhz=%llu "
              "bus_mhz=%llu) — every clock domain needs a nonzero "
              "frequency",
              (unsigned long long)cfg.accelMhz,
              (unsigned long long)cfg.cpuMhz,
              (unsigned long long)cfg.busMhz);

    // cpuLineBytes doubles as the DMA beat size and the flush/ready
    // bit granularity; zero would divide-by-zero the pump loop.
    if (cfg.cpuLineBytes == 0 || !isPowerOf2(cfg.cpuLineBytes))
        fatal("config: cpuLineBytes=%u — the CPU line (and DMA beat) "
              "size must be a nonzero power of two",
              cfg.cpuLineBytes);

    if (cfg.dma.maxOutstanding == 0)
        fatal("config: dma.maxOutstanding=0 — the DMA engine could "
              "never issue a beat; use a window of at least 1");
    if (cfg.dma.pageBytes == 0 || !isPowerOf2(cfg.dma.pageBytes))
        fatal("config: dma.pageBytes=%u — the pipelined-DMA chunk "
              "size must be a nonzero power of two (4096 in the "
              "paper)",
              cfg.dma.pageBytes);

    if (cfg.memType == MemInterface::Cache) {
        if (cfg.cache.lineBytes == 0 ||
            !isPowerOf2(cfg.cache.lineBytes))
            fatal("config: cache_line=%u — the cache line size must "
                  "be a nonzero power of two (16/32/64 in the "
                  "paper's sweeps)",
                  cfg.cache.lineBytes);
        if (cfg.cache.assoc == 0)
            fatal("config: cache_assoc=0 — associativity must be at "
                  "least 1");
        if (cfg.cache.sizeBytes == 0 ||
            cfg.cache.sizeBytes %
                    (cfg.cache.lineBytes * cfg.cache.assoc) !=
                0)
            fatal("config: cache_kb/cache_line/cache_assoc mismatch "
                  "— %u bytes is not divisible by line (%u) * assoc "
                  "(%u)",
                  cfg.cache.sizeBytes, cfg.cache.lineBytes,
                  cfg.cache.assoc);
        if (cfg.cache.ports == 0)
            fatal("config: cache_ports=0 — the datapath needs at "
                  "least one cache port");
        if (cfg.cache.mshrs == 0)
            fatal("config: cache_mshrs=0 — a non-blocking cache "
                  "needs at least one MSHR");
        if (cfg.tlbEntries == 0)
            fatal("config: tlb_entries=0 — the accelerator TLB needs "
                  "at least one entry");
    }

    for (unsigned i = 0; i < numFaultSites; ++i) {
        double r = cfg.faults.rates[i];
        if (r < 0.0 || r > 1.0)
            fatal("config: fault_%s=%g — injection rates are "
                  "probabilities in [0, 1]",
                  faultSiteName(static_cast<FaultSite>(i)), r);
    }
    if (cfg.faults.anyEnabled() && cfg.faults.maxRetries == 0)
        fatal("config: fault_max_retries=0 with nonzero fault rates "
              "— a single injected error would instantly fail the "
              "run; use at least 1");

    // Genie-Iface: completion mode, ACP regime, command queue.
    if (cfg.memType == MemInterface::Cache &&
        cfg.iface.memType == IfaceMemType::Acp)
        fatal("config: mem_type=acp contradicts mem=cache — the ACP "
              "fills scratchpads coherently; pick mem_type=acp (a "
              "scratchpad regime) or mem=cache, not both");
    if (cfg.memType == MemInterface::Cache &&
        !cfg.iface.arrayMemTypes.empty())
        fatal("config: per-array mem_type.<array> overrides apply to "
              "scratchpad arrays only — a cache-mode accelerator has "
              "no per-array data movement to select; drop the "
              "overrides or use mem=dma");
    if (cfg.iface.invocations == 0)
        fatal("config: invocations=0 — a run must invoke the kernel "
              "at least once (invocations=1 is the paper baseline)");
    if (cfg.iface.queueDepth > 0 &&
        cfg.iface.invocations > cfg.iface.queueDepth)
        fatal("config: invocations=%u exceeds queue_depth=%u — the "
              "driver enqueues the whole batch before its single "
              "ioctl, so the ring must hold every invocation; deepen "
              "queue_depth or lower invocations",
              cfg.iface.invocations, cfg.iface.queueDepth);
    if (cfg.iface.completion == CompletionMode::Interrupt &&
        cfg.iface.irqLatency == 0)
        fatal("config: irq_latency_ns=0 with completion=interrupt — "
              "a zero-latency interrupt would beat the spin path for "
              "free; model at least 1 ns of delivery latency");
}

Cycles
ValidationModel::barrierCriticalPathCycles(const Trace &trace,
                                           const Dddg &dddg,
                                           unsigned lanes)
{
    std::vector<std::uint64_t> depth(dddg.numNodes(), 0);
    std::uint64_t waveStart = 0;
    std::uint64_t waveEnd = 0;
    std::uint32_t currentWave = 0;
    for (NodeId i = 0; i < dddg.numNodes(); ++i) {
        std::uint32_t w = trace.ops[i].iteration / lanes;
        if (w != currentWave) {
            // All of the previous wave completes before this starts.
            currentWave = w;
            waveStart = waveEnd;
        }
        std::uint64_t begin = std::max(depth[i], waveStart);
        std::uint64_t finish = begin + latencyOf(trace.ops[i].op);
        waveEnd = std::max(waveEnd, finish);
        for (NodeId c : dddg.children(i))
            depth[c] = std::max(depth[c], finish);
    }
    return waveEnd;
}

Cycles
ValidationModel::computeBound(const SocConfig &cfg, const Trace &trace,
                              const Dddg &dddg)
{
    // Per-wave schedule bound: each wave of `lanes` iterations runs
    // to the *larger* of its internal critical path (dependences) and
    // its resource requirement (FU issue widths, scratchpad partition
    // bandwidth), then the barrier releases the next wave.
    Datapath::Params dp; // default per-lane issue widths
    const std::array<std::uint64_t, 6> perLane = {
        dp.intAluPerLane, dp.intMulPerLane, dp.fpAddPerLane,
        dp.fpMulPerLane, 1 /*div issues once per latency*/,
        dp.otherPerLane};

    std::vector<std::uint64_t> partitions(trace.arrays.size(), 1);
    for (std::size_t i = 0; i < trace.arrays.size(); ++i) {
        partitions[i] = effectiveSpadPartitions(
            trace.arrays[i].sizeBytes, trace.arrays[i].wordBytes,
            cfg.spadPartitions);
    }

    std::vector<std::uint64_t> depth(dddg.numNodes(), 0);
    // Per-lane FU/memory-issue counts: an iteration's work binds its
    // own lane's units (e.g. a chain of divides), not the aggregate.
    std::vector<std::array<std::uint64_t, 6>> laneClassOps(cfg.lanes);
    std::vector<std::uint64_t> laneMemOps(cfg.lanes, 0);
    std::vector<std::uint64_t> arrayOps(trace.arrays.size(), 0);

    std::uint64_t waveStart = 0;
    std::uint64_t waveCritEnd = 0;
    std::uint32_t currentWave = 0;

    auto waveResource = [&] {
        std::uint64_t r = 0;
        for (unsigned l = 0; l < cfg.lanes; ++l) {
            for (std::size_t k = 0; k < 6; ++k) {
                std::uint64_t need = laneClassOps[l][k];
                if (k == static_cast<std::size_t>(FuKind::FpDiv))
                    need *= latencyOf(Opcode::FpDiv);
                r = std::max(r, divCeil(need, perLane[k]));
            }
            r = std::max(r, divCeil(laneMemOps[l],
                                    dp.memOpsPerLane));
        }
        for (std::size_t i = 0; i < trace.arrays.size(); ++i)
            r = std::max(r, divCeil(arrayOps[i], partitions[i]));
        return r;
    };

    auto closeWave = [&] {
        std::uint64_t span =
            std::max(waveCritEnd - waveStart, waveResource());
        waveStart += span;
        waveCritEnd = waveStart;
        for (auto &c : laneClassOps)
            c = {};
        std::fill(laneMemOps.begin(), laneMemOps.end(), 0);
        std::fill(arrayOps.begin(), arrayOps.end(), 0);
    };

    for (NodeId i = 0; i < dddg.numNodes(); ++i) {
        const TraceOp &op = trace.ops[i];
        std::uint32_t w = op.iteration / cfg.lanes;
        unsigned lane = op.iteration % cfg.lanes;
        if (w != currentWave) {
            closeWave();
            currentWave = w;
        }
        if (isMemoryOp(op.op)) {
            ++arrayOps[static_cast<std::size_t>(op.arrayId)];
            ++laneMemOps[lane];
        } else {
            ++laneClassOps[lane][static_cast<std::size_t>(
                fuKindOf(op.op))];
        }
        std::uint64_t begin = std::max(depth[i], waveStart);
        std::uint64_t finish = begin + latencyOf(op.op);
        waveCritEnd = std::max(waveCritEnd, finish);
        for (NodeId c : dddg.children(i))
            depth[c] = std::max(depth[c], finish);
    }
    closeWave();
    return waveStart;
}

Tick
ValidationModel::dmaTransferTime(const SocConfig &cfg,
                                 std::uint64_t bytes, unsigned segments)
{
    if (bytes == 0)
        return 0;
    Tick busPeriod = periodFromMhz(cfg.busMhz);
    std::uint64_t bytesPerCycle = cfg.busWidthBits / 8;

    // Each beat pays a one-cycle bus header on top of its data cycles.
    std::uint64_t beats = divCeil(bytes, 64);
    Tick transfer = (divCeil(bytes, bytesPerCycle) + beats) * busPeriod;

    // Per-transaction setup plus per-descriptor fetch round trips.
    Tick accelPeriod = periodFromMhz(cfg.accelMhz);
    Tick setup = cfg.dma.setupCycles * accelPeriod;
    Tick descriptor = segments * (200 * tickPerNs);

    // Pipeline ramp: first beat's DRAM access is exposed.
    Tick ramp = 70 * tickPerNs;

    return setup + descriptor + transfer + ramp;
}

ValidationPrediction
ValidationModel::predictDmaBaseline(const SocConfig &cfg,
                                    const Trace &trace,
                                    const Dddg &dddg)
{
    ValidationPrediction p;
    std::uint64_t inBytes = trace.totalInputBytes();
    std::uint64_t outBytes = trace.totalOutputBytes();

    unsigned inSegs = 0, outSegs = 0;
    for (const auto &a : trace.arrays) {
        if (a.isInput)
            ++inSegs;
        if (a.isOutput)
            ++outSegs;
    }

    p.invalidate =
        divCeil(outBytes, cfg.cpuLineBytes) * cfg.invalidatePerLine;
    p.flush = divCeil(inBytes, cfg.cpuLineBytes) * cfg.flushPerLine;
    p.dmaIn = dmaTransferTime(cfg, inBytes, inSegs);
    p.compute = computeBound(cfg, trace, dddg) *
                periodFromMhz(cfg.accelMhz);
    p.dmaOut = dmaTransferTime(cfg, outBytes, outSegs);
    p.sync = 350 * tickPerNs; // ioctl entry + spin-notice latency
    return p;
}

} // namespace genie
