/**
 * @file
 * Deterministic markdown rendering of Genie-Scope analyses: the
 * single-run critical-path report and the sweep cross-run report.
 *
 * Output bytes are a pure function of simulated results — no wall
 * clock, no MEPS, no host identifiers — so a report regenerated on
 * any machine, at any thread count, compares byte-identical (and
 * genie_diff / plain `cmp` can gate on it in CI).
 */

#ifndef GENIE_SCOPE_REPORT_HH
#define GENIE_SCOPE_REPORT_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/results.hh"
#include "dse/sweep.hh"
#include "scope/span_dag.hh"
#include "sim/thread_safety.hh"

namespace genie
{

/** Inputs for one run's report. Pointers may be null; sections for
 * missing inputs are omitted. */
struct RunReportInput GENIE_THREAD_LOCAL_OK
{
    /** Workload name (report title). */
    std::string title;
    /** SocConfig::describe() of the design point. */
    std::string configLine;
    const SocResults *results = nullptr;
    const BlameReport *blame = nullptr;
    /** Longest-segments table size. */
    std::size_t topSegments = 12;
    /** Span names for the segments table (dag that produced blame);
     * null hides the table. */
    const SpanDag *dag = nullptr;
};

/** Render the single-run report. */
std::string renderRunReport(const RunReportInput &input);

/** One sweep point's blame, keyed by index into the points vector. */
using IndexedBlame = std::pair<std::size_t, BlameReport>;

struct SweepReportInput GENIE_THREAD_LOCAL_OK
{
    std::string title;
    const std::vector<DesignPoint> *points = nullptr;
    /** Per-point blame (sparse; sorted by index). Empty = no blame
     * columns. */
    std::vector<IndexedBlame> blames;
    /** Note rendered when blame was computed for a subset only. */
    std::string blameScopeNote;
};

/** Render the cross-run sweep report with Pareto annotations. */
std::string renderSweepReport(const SweepReportInput &input);

/** "1.84x" for finite speedups, "inf" for the 0.0 sentinel. */
std::string formatSpeedup(double whatIfSpeedup);

/** The category with the largest on-path charge (ties: enum order);
 * "-" when nothing was charged. */
std::string topBlameCategory(const BlameReport &blame);

} // namespace genie

#endif // GENIE_SCOPE_REPORT_HH
