#include "span_dag.hh"

#include <algorithm>
#include <array>
#include <map>
#include <tuple>

#include "sim/interval_set.hh"
#include "sim/logging.hh"

namespace genie
{

SpanDag
buildSpanDag(const Tracer &tracer)
{
    SpanDag dag;
    auto views = tracer.spanViews();
    dag.spans.reserve(views.size());
    for (const auto &v : views) {
        if (v.open)
            continue;
        ScopeSpan s;
        s.id = v.id;
        s.begin = v.begin;
        s.end = v.end;
        s.track = std::string(v.track);
        s.name = std::string(v.name);
        s.cat = v.cat;
        dag.spans.push_back(std::move(s));
        dag.endTick = std::max(dag.endTick, v.end);
    }
    dag.flowInto.assign(dag.spans.size(), 0);

    // Spans arrive in record order, so ids are strictly increasing
    // and a binary search maps id -> index.
    auto indexOf = [&](TraceSpanId id) -> std::size_t {
        auto it = std::lower_bound(
            dag.spans.begin(), dag.spans.end(), id,
            [](const ScopeSpan &s, TraceSpanId want) {
                return s.id < want;
            });
        if (it == dag.spans.end() || it->id != id)
            return dag.spans.size();
        return static_cast<std::size_t>(it - dag.spans.begin());
    };

    for (const auto &f : tracer.flowLinks()) {
        std::size_t to = indexOf(f.to);
        std::size_t from = indexOf(f.from);
        if (to >= dag.spans.size() || from >= dag.spans.size())
            continue; // an endpoint was an open span; drop the edge
        dag.flowInto[to] = f.from;
        ++dag.flowCount;
    }
    return dag;
}

std::vector<CriticalSegment>
criticalPath(const SpanDag &dag)
{
    std::vector<CriticalSegment> path;
    const auto &spans = dag.spans;
    if (spans.empty() || dag.endTick == 0)
        return path;

    // Lexicographic (end, begin, id) orders every tie-break below, so
    // the walk is a pure function of the recorded spans.
    auto key = [&](std::size_t i) {
        return std::make_tuple(spans[i].end, spans[i].begin,
                               spans[i].id);
    };

    // Non-empty spans sorted by (end, begin, id) for the inferred-
    // dependence fallback: "what finished most recently before the
    // frontier?"
    std::vector<std::size_t> byEnd;
    byEnd.reserve(spans.size());
    for (std::size_t i = 0; i < spans.size(); ++i) {
        if (spans[i].end > spans[i].begin)
            byEnd.push_back(i);
    }
    std::sort(byEnd.begin(), byEnd.end(),
              [&](std::size_t a, std::size_t b) {
                  return key(a) < key(b);
              });
    if (byEnd.empty())
        return path;

    auto indexOf = [&](TraceSpanId id) -> std::size_t {
        auto it = std::lower_bound(
            spans.begin(), spans.end(), id,
            [](const ScopeSpan &s, TraceSpanId want) {
                return s.id < want;
            });
        GENIE_ASSERT(it != spans.end() && it->id == id,
                     "flow edge references unknown span %llu",
                     (unsigned long long)id);
        return static_cast<std::size_t>(it - spans.begin());
    };

    // Start from the latest-ending span: the one whose completion is
    // the end of the run.
    std::size_t cur = byEnd.back();
    Tick frontier = dag.endTick;
    bool viaFlow = false;

    while (true) {
        const ScopeSpan &s = spans[cur];
        Tick segEnd = std::min(s.end, frontier);
        Tick segBegin = std::min(s.begin, segEnd);
        if (segEnd > segBegin)
            path.push_back({cur, segBegin, segEnd, viaFlow});
        frontier = std::min(frontier, s.begin);
        if (frontier == 0)
            break;

        TraceSpanId pred = dag.flowInto[cur];
        if (pred != 0) {
            // Recorded causality. Flow edges satisfy from < to, so
            // ids strictly decrease along any chain (termination).
            std::size_t next = indexOf(pred);
            GENIE_ASSERT(spans[next].id < s.id,
                         "flow edge is not a DAG edge");
            cur = next;
            viaFlow = true;
            continue;
        }

        // No recorded edge: infer a handoff from the latest non-empty
        // span that finished at or before the frontier. Its begin is
        // strictly below its end <= frontier, so the frontier strictly
        // decreases (termination).
        auto it = std::upper_bound(
            byEnd.begin(), byEnd.end(), frontier,
            [&](Tick want, std::size_t i) {
                return want < spans[i].end;
            });
        if (it == byEnd.begin())
            break; // nothing ended before the frontier: done
        cur = *(it - 1);
        GENIE_ASSERT(spans[cur].begin < frontier,
                     "inferred hop made no progress");
        viaFlow = false;
    }
    return path;
}

namespace
{

double
whatIf(Tick endTick, Tick onPath)
{
    if (onPath == 0)
        return 1.0;
    if (onPath >= endTick)
        return 0.0; // unbounded; rendered as "inf"
    return static_cast<double>(endTick) /
           static_cast<double>(endTick - onPath);
}

} // namespace

BlameReport
blame(const SpanDag &dag)
{
    BlameReport r;
    r.endTick = dag.endTick;
    r.path = criticalPath(dag);

    std::array<Tick, numTraceCategories> catOnPath{};
    std::array<std::uint64_t, numTraceCategories> catSegments{};
    std::array<IntervalSet, numTraceCategories> catAll{};
    // std::map keeps tracks in name order without a separate sort.
    std::map<std::string, BlameEntry> tracks;
    std::map<std::string, IntervalSet> trackAll;

    for (const auto &s : dag.spans) {
        catAll[static_cast<std::size_t>(s.cat)].add(s.begin, s.end);
        trackAll[s.track].add(s.begin, s.end);
    }

    bool first = true;
    for (const auto &seg : r.path) {
        const ScopeSpan &s = dag.spans[seg.spanIndex];
        Tick len = seg.end - seg.begin;
        r.coveredTicks += len;
        catOnPath[static_cast<std::size_t>(s.cat)] += len;
        ++catSegments[static_cast<std::size_t>(s.cat)];
        auto &t = tracks[s.track];
        t.onPathTicks += len;
        ++t.segments;
        if (!first) {
            if (seg.viaFlow)
                ++r.flowHops;
            else
                ++r.inferredHops;
        }
        first = false;
    }
    r.coverage = r.endTick > 0
                     ? static_cast<double>(r.coveredTicks) /
                           static_cast<double>(r.endTick)
                     : 0.0;

    for (std::size_t c = 0; c < numTraceCategories; ++c) {
        BlameEntry e;
        e.name = traceCategoryName(static_cast<TraceCategory>(c));
        e.onPathTicks = catOnPath[c];
        e.totalTicks = catAll[c].measure();
        e.overlappedTicks = e.totalTicks > e.onPathTicks
                                ? e.totalTicks - e.onPathTicks
                                : 0;
        e.whatIfSpeedup = whatIf(r.endTick, e.onPathTicks);
        e.segments = catSegments[c];
        r.byCategory.push_back(std::move(e));
    }

    for (auto &[name, entry] : tracks) {
        entry.name = name;
        entry.totalTicks = trackAll[name].measure();
        entry.overlappedTicks =
            entry.totalTicks > entry.onPathTicks
                ? entry.totalTicks - entry.onPathTicks
                : 0;
        entry.whatIfSpeedup = whatIf(r.endTick, entry.onPathTicks);
        r.byTrack.push_back(entry);
    }
    // Components: biggest on-path contribution first; stable name
    // order among equals (std::map already yields name order).
    std::stable_sort(r.byTrack.begin(), r.byTrack.end(),
                     [](const BlameEntry &a, const BlameEntry &b) {
                         return a.onPathTicks > b.onPathTicks;
                     });
    return r;
}

BlameReport
blameRun(const Tracer &tracer)
{
    return blame(buildSpanDag(tracer));
}

} // namespace genie
