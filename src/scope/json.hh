/**
 * @file
 * A minimal JSON reader for Genie-Scope's cross-run tooling.
 *
 * genie_diff compares genie-stats-1 and genie-bench-1 documents that
 * this repository itself emits, so the parser targets exactly RFC
 * 8259 JSON with two deliberate simplifications:
 *
 *  - numbers are held as double plus the original lexeme (so a diff
 *    can report values verbatim, as written);
 *  - \uXXXX escapes decode the BMP only (our writers never emit
 *    surrogate pairs).
 *
 * Object members keep insertion order — diffs walk both documents in
 * a canonical (sorted) key order regardless, but error messages can
 * point at the member as the file ordered it.
 */

#ifndef GENIE_SCOPE_JSON_HH
#define GENIE_SCOPE_JSON_HH

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/thread_safety.hh"

namespace genie
{

class JsonValue;

/** Members in file order; keys may repeat (last one wins on get()). */
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue GENIE_THREAD_LOCAL_OK
{
  public:
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::Null; }
    bool isBool() const { return _type == Type::Bool; }
    bool isNumber() const { return _type == Type::Number; }
    bool isString() const { return _type == Type::String; }
    bool isArray() const { return _type == Type::Array; }
    bool isObject() const { return _type == Type::Object; }

    bool boolean() const { return _bool; }
    double number() const { return _number; }
    /** The number exactly as spelled in the document. */
    const std::string &numberLexeme() const { return _scalar; }
    const std::string &string() const { return _scalar; }

    const std::vector<JsonValue> &array() const { return _array; }
    const JsonMembers &members() const { return _members; }

    /** Member lookup; null if absent or not an object. */
    const JsonValue *get(const std::string &key) const;

    // Construction (used by the parser; handy in tests).
    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double v, std::string lexeme);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue makeObject(JsonMembers members);

  private:
    Type _type = Type::Null;
    bool _bool = false;
    double _number = 0.0;
    std::string _scalar; ///< string value, or number lexeme
    std::vector<JsonValue> _array;
    JsonMembers _members;
};

/** Parse result: document or a position-annotated error. */
struct JsonParseResult GENIE_THREAD_LOCAL_OK
{
    bool ok = false;
    JsonValue value;
    std::string error;      ///< empty when ok
    std::size_t errorLine = 0;
    std::size_t errorColumn = 0;
};

/** Parse @p text as one JSON document (trailing junk is an error). */
JsonParseResult parseJson(const std::string &text);

/** Read and parse @p path; IO failures report through the same
 * error channel as syntax errors. */
JsonParseResult parseJsonFile(const std::string &path);

} // namespace genie

#endif // GENIE_SCOPE_JSON_HH
