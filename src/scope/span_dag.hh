/**
 * @file
 * Genie-Scope: the weighted span DAG and critical-path attribution.
 *
 * The Tracer records *what* happened (spans) and *why* (flow links:
 * span A's component scheduled the event that recorded span B). This
 * module turns that stream into an explanation of the run:
 *
 *  - buildSpanDag() indexes the spans and flows of one traced run.
 *  - criticalPath() walks backwards from the latest-ending span,
 *    charging wall-clock segments to the span active at each instant
 *    and hopping to its causal predecessor: the recorded flow edge
 *    when one exists, otherwise the latest-ending span that finished
 *    at or before the charge frontier (an *inferred* dependence,
 *    flagged as such — typically a resource handoff the flow
 *    instrumentation cannot see, e.g. "the bus freed up").
 *  - blame() folds the charged segments into per-category and
 *    per-component (track) totals: ticks on the critical path, ticks
 *    of total activity, ticks overlapped (hidden behind other work),
 *    and the what-if lower-bound speedup from deleting the category's
 *    on-path time entirely (Amdahl on the charged segments).
 *
 * Everything here is a pure function of the recorded trace: no clocks,
 * no pointers ordering, no floating accumulation across unordered
 * sets. Two identical runs — or the same run traced on different
 * sweep threads — blame byte-identically.
 */

#ifndef GENIE_SCOPE_SPAN_DAG_HH
#define GENIE_SCOPE_SPAN_DAG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/thread_safety.hh"
#include "sim/types.hh"
#include "trace/tracer.hh"

namespace genie
{

/** One span in the analysis DAG (strings copied out of the Tracer so
 * a SpanDag outlives the Soc that produced it). */
struct ScopeSpan GENIE_THREAD_LOCAL_OK
{
    TraceSpanId id = 0;
    Tick begin = 0;
    Tick end = 0;
    std::string track;
    std::string name;
    TraceCategory cat = TraceCategory::Flush;
};

/** The indexed spans+flows of one run. */
struct SpanDag GENIE_THREAD_LOCAL_OK
{
    /** Closed spans, ordered by id (record order). */
    std::vector<ScopeSpan> spans;
    /** flowInto[i] = id of the causal predecessor of spans[i], or 0
     * when the run recorded no flow edge into it. */
    std::vector<TraceSpanId> flowInto;
    /** Latest span end tick (0 for an empty trace). */
    Tick endTick = 0;
    /** Recorded flow edges that join two closed spans. */
    std::size_t flowCount = 0;
};

/** Snapshot the spans and flows of @p tracer. Open spans are dropped
 * (they have no end to charge); flows into or out of dropped spans
 * are dropped with them. */
SpanDag buildSpanDag(const Tracer &tracer);

/** One charged interval of the critical path. */
struct CriticalSegment GENIE_THREAD_LOCAL_OK
{
    /** Index into SpanDag::spans of the span charged. */
    std::size_t spanIndex = 0;
    /** Charged interval [begin, end): the part of the span's duration
     * not already explained by later path segments. */
    Tick begin = 0;
    Tick end = 0;
    /** True when the hop *into* this span followed a recorded flow
     * edge; false for the walk root and inferred dependences. */
    bool viaFlow = false;
};

/**
 * The critical path of @p dag, as charged segments ordered from the
 * end of the run backwards to (or toward) tick 0. Deterministic: all
 * tie-breaks are (end, begin, id) lexicographic.
 */
std::vector<CriticalSegment> criticalPath(const SpanDag &dag);

/** Attribution totals for one category or one component track. */
struct BlameEntry GENIE_THREAD_LOCAL_OK
{
    std::string name;
    /** Ticks of critical-path segments charged here. */
    Tick onPathTicks = 0;
    /** Union of all span intervals here (double counting removed). */
    Tick totalTicks = 0;
    /** totalTicks not on the critical path: activity hidden behind
     * other work. High overlap = already well pipelined. */
    Tick overlappedTicks = 0;
    /** Lower bound on whole-run speedup if the on-path ticks charged
     * here became free: endTick / (endTick - onPathTicks). Infinity
     * (reported as 0) cannot occur while coverage < 100%. */
    double whatIfSpeedup = 1.0;
    /** Number of critical-path segments charged here. */
    std::uint64_t segments = 0;
};

/** The full attribution report for one run. */
struct BlameReport GENIE_THREAD_LOCAL_OK
{
    Tick endTick = 0;
    /** Ticks explained by the critical path (disjoint segments). */
    Tick coveredTicks = 0;
    /** coveredTicks / endTick (0 when endTick is 0). */
    double coverage = 0.0;
    /** Path hops that followed a recorded flow edge. */
    std::uint64_t flowHops = 0;
    /** Path hops that fell back to latest-end inference. */
    std::uint64_t inferredHops = 0;
    std::vector<CriticalSegment> path;
    /** Per-category entries, every category present, enum order. */
    std::vector<BlameEntry> byCategory;
    /** Per-track entries, descending onPathTicks then name. */
    std::vector<BlameEntry> byTrack;
};

/** Run criticalPath() on @p dag and fold the attribution totals. */
BlameReport blame(const SpanDag &dag);

/** Convenience: buildSpanDag + blame in one call. */
BlameReport blameRun(const Tracer &tracer);

} // namespace genie

#endif // GENIE_SCOPE_SPAN_DAG_HH
