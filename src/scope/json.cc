#include "json.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace genie
{

const JsonValue *
JsonValue::get(const std::string &key) const
{
    const JsonValue *found = nullptr;
    for (const auto &[k, v] : _members) {
        if (k == key)
            found = &v; // last duplicate wins, like every browser
    }
    return found;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue{};
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v._type = Type::Bool;
    v._bool = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double d, std::string lexeme)
{
    JsonValue v;
    v._type = Type::Number;
    v._number = d;
    v._scalar = std::move(lexeme);
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v._type = Type::String;
    v._scalar = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v._type = Type::Array;
    v._array = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(JsonMembers members)
{
    JsonValue v;
    v._type = Type::Object;
    v._members = std::move(members);
    return v;
}

namespace
{

/** Encode @p cp (a BMP code point) as UTF-8 onto @p out. */
void
appendUtf8(std::string &out, unsigned cp)
{
    if (cp < 0x80) {
        out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
        out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
}

/** Recursive-descent parser over the whole buffered document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    JsonParseResult
    run()
    {
        JsonParseResult r;
        skipWs();
        if (!parseValue(r.value)) {
            fillError(r);
            return r;
        }
        skipWs();
        if (pos != s.size()) {
            err = "trailing characters after document";
            fillError(r);
            return r;
        }
        r.ok = true;
        return r;
    }

  private:
    const std::string &s;
    std::size_t pos = 0;
    std::string err;
    /** Nesting guard: our writers stay shallow; a hostile input must
     * not blow the parser's stack. */
    int depth = 0;
    static constexpr int maxDepth = 128;

    void
    fillError(JsonParseResult &r) const
    {
        r.ok = false;
        r.error = err.empty() ? "parse error" : err;
        r.errorLine = 1;
        r.errorColumn = 1;
        for (std::size_t i = 0; i < pos && i < s.size(); ++i) {
            if (s[i] == '\n') {
                ++r.errorLine;
                r.errorColumn = 1;
            } else {
                ++r.errorColumn;
            }
        }
    }

    bool atEnd() const { return pos >= s.size(); }
    char peek() const { return s[pos]; }

    void
    skipWs()
    {
        while (!atEnd()) {
            char c = s[pos];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos;
            else
                break;
        }
    }

    bool
    fail(std::string message)
    {
        if (err.empty())
            err = std::move(message);
        return false;
    }

    bool
    expect(char c)
    {
        if (atEnd() || s[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    literal(const char *word, JsonValue v, JsonValue &out)
    {
        for (const char *p = word; *p != '\0'; ++p, ++pos) {
            if (atEnd() || s[pos] != *p)
                return fail(std::string("bad literal (expected ") +
                            word + ")");
        }
        out = std::move(v);
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (atEnd())
            return fail("unexpected end of input");
        if (++depth > maxDepth)
            return fail("document nested too deeply");
        bool ok;
        switch (peek()) {
          case '{':
            ok = parseObject(out);
            break;
          case '[':
            ok = parseArray(out);
            break;
          case '"': {
            std::string str;
            ok = parseString(str);
            if (ok)
                out = JsonValue::makeString(std::move(str));
            break;
          }
          case 't':
            ok = literal("true", JsonValue::makeBool(true), out);
            break;
          case 'f':
            ok = literal("false", JsonValue::makeBool(false), out);
            break;
          case 'n':
            ok = literal("null", JsonValue::makeNull(), out);
            break;
          default:
            ok = parseNumber(out);
            break;
        }
        --depth;
        return ok;
    }

    bool
    parseObject(JsonValue &out)
    {
        if (!expect('{'))
            return false;
        JsonMembers members;
        skipWs();
        if (!atEnd() && peek() == '}') {
            ++pos;
            out = JsonValue::makeObject(std::move(members));
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!expect(':'))
                return false;
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (atEnd())
                return fail("unterminated object");
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                out = JsonValue::makeObject(std::move(members));
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        if (!expect('['))
            return false;
        std::vector<JsonValue> items;
        skipWs();
        if (!atEnd() && peek() == ']') {
            ++pos;
            out = JsonValue::makeArray(std::move(items));
            return true;
        }
        while (true) {
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            items.push_back(std::move(v));
            skipWs();
            if (atEnd())
                return fail("unterminated array");
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == ']') {
                ++pos;
                out = JsonValue::makeArray(std::move(items));
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        if (atEnd() || peek() != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            char c = s[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (atEnd())
                return fail("unterminated escape");
            char e = s[pos++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    if (atEnd())
                        return fail("truncated \\u escape");
                    char h = s[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape character");
            }
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos;
        if (!atEnd() && peek() == '-')
            ++pos;
        if (atEnd() || !isDigit(peek()))
            return fail("malformed number");
        if (peek() == '0')
            ++pos; // leading zero: no further integer digits
        else
            while (!atEnd() && isDigit(peek()))
                ++pos;
        if (!atEnd() && peek() == '.') {
            ++pos;
            if (atEnd() || !isDigit(peek()))
                return fail("malformed number (bare decimal point)");
            while (!atEnd() && isDigit(peek()))
                ++pos;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos;
            if (atEnd() || !isDigit(peek()))
                return fail("malformed number (empty exponent)");
            while (!atEnd() && isDigit(peek()))
                ++pos;
        }
        std::string lexeme = s.substr(start, pos - start);
        double d = std::strtod(lexeme.c_str(), nullptr);
        out = JsonValue::makeNumber(d, std::move(lexeme));
        return true;
    }

    static bool isDigit(char c) { return c >= '0' && c <= '9'; }
};

} // namespace

JsonParseResult
parseJson(const std::string &text)
{
    return Parser(text).run();
}

JsonParseResult
parseJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        JsonParseResult r;
        r.error = format("cannot open '%s'", path.c_str());
        return r;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseJson(buf.str());
}

} // namespace genie
