#include "report.hh"

#include <algorithm>

#include "dse/pareto.hh"
#include "metrics/export.hh"
#include "sim/logging.hh"

namespace genie
{

namespace
{

std::string
ticksStr(Tick t)
{
    return format("%llu", (unsigned long long)t);
}

std::string
pctStr(double fraction)
{
    return format("%.2f%%", fraction * 100.0);
}

double
shareOf(Tick part, Tick whole)
{
    return whole > 0 ? static_cast<double>(part) /
                           static_cast<double>(whole)
                     : 0.0;
}

void
renderBlameTable(std::string &out,
                 const std::vector<BlameEntry> &entries,
                 const char *label, Tick covered)
{
    out += format("| %s | on-path | share | total | overlapped | "
                  "what-if |\n",
                  label);
    out += "|---|---:|---:|---:|---:|---:|\n";
    for (const auto &e : entries) {
        if (e.onPathTicks == 0 && e.totalTicks == 0)
            continue;
        out += format(
            "| %s | %s | %s | %s | %s | %s |\n", e.name.c_str(),
            ticksStr(e.onPathTicks).c_str(),
            pctStr(shareOf(e.onPathTicks, covered)).c_str(),
            ticksStr(e.totalTicks).c_str(),
            ticksStr(e.overlappedTicks).c_str(),
            formatSpeedup(e.whatIfSpeedup).c_str());
    }
}

void
renderResults(std::string &out, const SocResults &r)
{
    out += "## Results\n\n";
    out += format("- end-to-end: %s ticks (%s us)\n",
                  ticksStr(r.totalTicks).c_str(),
                  formatStatNumber(r.totalUs()).c_str());
    out += format("- accelerator cycles: %llu\n",
                  (unsigned long long)r.accelCycles);
    out += format("- energy: %s pJ (dynamic %s, leakage %s), avg "
                  "power %s mW, EDP %s J*s\n",
                  formatStatNumber(r.energyPj).c_str(),
                  formatStatNumber(r.dynamicPj).c_str(),
                  formatStatNumber(r.leakagePj).c_str(),
                  formatStatNumber(r.avgPowerMw).c_str(),
                  formatStatNumber(r.edp).c_str());
    out += format("- bus utilization: %s, cache miss rate: %s, DMA "
                  "bytes: %llu\n",
                  pctStr(r.busUtilization).c_str(),
                  pctStr(r.cacheMissRate).c_str(),
                  (unsigned long long)r.dmaBytes);
    if (r.stalled)
        out += "- **run stalled** (watchdog abort; numbers are "
               "partial)\n";
    out += "\n";
}

void
renderCriticalPath(std::string &out, const BlameReport &b,
                   const SpanDag *dag, std::size_t topSegments)
{
    out += "## Critical path\n\n";
    out += format("- coverage: %s of %s ticks explained "
                  "(%zu segments; %llu flow hops, %llu inferred)\n\n",
                  pctStr(b.coverage).c_str(),
                  ticksStr(b.endTick).c_str(), b.path.size(),
                  (unsigned long long)b.flowHops,
                  (unsigned long long)b.inferredHops);
    renderBlameTable(out, b.byCategory, "category", b.coveredTicks);
    out += "\n## Component blame\n\n";
    renderBlameTable(out, b.byTrack, "component", b.coveredTicks);

    if (dag == nullptr || b.path.empty() || topSegments == 0)
        return;
    // The longest charged segments, longest first (ties: later
    // segment first — deterministic because segment intervals are
    // disjoint).
    std::vector<const CriticalSegment *> top;
    top.reserve(b.path.size());
    for (const auto &seg : b.path)
        top.push_back(&seg);
    std::stable_sort(top.begin(), top.end(),
                     [](const CriticalSegment *a,
                        const CriticalSegment *b2) {
                         Tick la = a->end - a->begin;
                         Tick lb = b2->end - b2->begin;
                         if (la != lb)
                             return la > lb;
                         return a->begin > b2->begin;
                     });
    if (top.size() > topSegments)
        top.resize(topSegments);
    out += "\n## Longest critical-path segments\n\n";
    out += "| span | component | category | charged | interval | "
           "link |\n";
    out += "|---|---|---|---:|---|---|\n";
    for (const auto *seg : top) {
        const ScopeSpan &s = dag->spans[seg->spanIndex];
        out += format("| %s | %s | %s | %s | [%s, %s) | %s |\n",
                      s.name.c_str(), s.track.c_str(),
                      traceCategoryName(s.cat),
                      ticksStr(seg->end - seg->begin).c_str(),
                      ticksStr(seg->begin).c_str(),
                      ticksStr(seg->end).c_str(),
                      seg->viaFlow ? "flow" : "inferred");
    }
}

} // namespace

std::string
formatSpeedup(double whatIfSpeedup)
{
    if (whatIfSpeedup == 0.0)
        return "inf";
    return format("%.3fx", whatIfSpeedup);
}

std::string
topBlameCategory(const BlameReport &blame)
{
    const BlameEntry *best = nullptr;
    for (const auto &e : blame.byCategory) {
        if (e.onPathTicks == 0)
            continue;
        if (best == nullptr || e.onPathTicks > best->onPathTicks)
            best = &e;
    }
    return best != nullptr ? best->name : "-";
}

std::string
renderRunReport(const RunReportInput &input)
{
    std::string out;
    out += format("# Genie-Scope run report: %s\n\n",
                  input.title.c_str());
    if (!input.configLine.empty())
        out += format("- config: `%s`\n", input.configLine.c_str());
    out += "\n";
    if (input.results != nullptr)
        renderResults(out, *input.results);
    if (input.blame != nullptr)
        renderCriticalPath(out, *input.blame, input.dag,
                           input.topSegments);
    return out;
}

std::string
renderSweepReport(const SweepReportInput &input)
{
    std::string out;
    out += format("# Genie-Scope sweep report: %s\n\n",
                  input.title.c_str());
    if (input.points == nullptr || input.points->empty()) {
        out += "No design points.\n";
        return out;
    }
    const auto &points = *input.points;
    auto frontier = paretoFrontier(points);
    std::size_t best = edpOptimal(points);
    out += format("- design points: %zu; Pareto-optimal "
                  "(delay, power): %zu; EDP-optimal: #%zu\n",
                  points.size(), frontier.size(), best);
    if (!input.blameScopeNote.empty())
        out += format("- %s\n", input.blameScopeNote.c_str());
    out += "\n";

    std::vector<bool> onFrontier(points.size(), false);
    for (std::size_t i : frontier)
        onFrontier[i] = true;
    auto blameFor =
        [&](std::size_t i) -> const BlameReport * {
        auto it = std::lower_bound(
            input.blames.begin(), input.blames.end(), i,
            [](const IndexedBlame &b, std::size_t want) {
                return b.first < want;
            });
        if (it == input.blames.end() || it->first != i)
            return nullptr;
        return &it->second;
    };

    bool withBlame = !input.blames.empty();
    out += "| # | config | total_us | power_mw | edp | pareto |";
    if (withBlame)
        out += " top blame | on-path share | coverage |";
    out += "\n|---:|---|---:|---:|---:|:---:|";
    if (withBlame)
        out += "---|---:|---:|";
    out += "\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        out += format("| %zu | `%s` | %s | %s | %s | %s |", i,
                      p.config.describe().c_str(),
                      formatStatNumber(p.results.totalUs()).c_str(),
                      formatStatNumber(p.results.avgPowerMw).c_str(),
                      formatStatNumber(p.results.edp).c_str(),
                      onFrontier[i] ? (i == best ? "EDP*" : "*")
                                    : "");
        if (withBlame) {
            const BlameReport *b = blameFor(i);
            if (b == nullptr) {
                out += " - | - | - |";
            } else {
                Tick topTicks = 0;
                std::string topCat = topBlameCategory(*b);
                for (const auto &e : b->byCategory)
                    topTicks = std::max(topTicks, e.onPathTicks);
                out += format(
                    " %s | %s | %s |", topCat.c_str(),
                    pctStr(shareOf(topTicks, b->coveredTicks))
                        .c_str(),
                    pctStr(b->coverage).c_str());
            }
        }
        out += "\n";
    }
    return out;
}

} // namespace genie
