#include "diff.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>

#include "sim/logging.hh"

namespace genie
{

bool
globMatch(std::string_view pattern, std::string_view text)
{
    // Iterative star-backtracking matcher (no recursion, O(n*m)).
    std::size_t p = 0, t = 0;
    std::size_t starP = std::string_view::npos, starT = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            starP = p++;
            starT = t;
        } else if (starP != std::string_view::npos) {
            p = starP + 1;
            t = ++starT;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

std::vector<DiffRule>
defaultGenieDiffRules()
{
    // Host-derived numbers: meaningful only on the machine that
    // produced them, never comparable across runs.
    return {
        {"*wall_ms*", true, 0.0},
        {"*wall_ns*", true, 0.0},
        {"*meps*", true, 0.0},
        {"*points_per_sec*", true, 0.0},
        {"*.host.*", true, 0.0},
    };
}

namespace
{

const DiffRule *
matchRule(const std::vector<DiffRule> &rules, const std::string &path)
{
    for (const auto &r : rules) {
        if (globMatch(r.glob, path))
            return &r;
    }
    return nullptr;
}

std::string
renderLeaf(const JsonValue &v)
{
    switch (v.type()) {
      case JsonValue::Type::Null:
        return "null";
      case JsonValue::Type::Bool:
        return v.boolean() ? "true" : "false";
      case JsonValue::Type::Number:
        return v.numberLexeme();
      case JsonValue::Type::String:
        return "\"" + v.string() + "\"";
      case JsonValue::Type::Array:
        return format("[array of %zu]", v.array().size());
      case JsonValue::Type::Object:
        return format("{object of %zu}", v.members().size());
    }
    return "?";
}

void
note(std::vector<DiffEntry> &sink, DiffEntry e)
{
    sink.push_back(std::move(e));
}

const char *
typeName(JsonValue::Type t)
{
    switch (t) {
      case JsonValue::Type::Null: return "null";
      case JsonValue::Type::Bool: return "bool";
      case JsonValue::Type::Number: return "number";
      case JsonValue::Type::String: return "string";
      case JsonValue::Type::Array: return "array";
      case JsonValue::Type::Object: return "object";
    }
    return "?";
}

class Differ
{
  public:
    Differ(const DiffOptions &opt, DiffResult &out)
        : options(opt), result(out)
    {}

    void
    walk(const std::string &path, const JsonValue *a,
         const JsonValue *b)
    {
        const DiffRule *rule = matchRule(options.rules, path);
        if (rule != nullptr && rule->ignore) {
            ++result.ignoredLeaves;
            return;
        }
        if (a == nullptr) {
            note(options.strict ? result.failures : result.warnings,
                 {DiffKind::Added, path, "-", renderLeaf(*b), 0.0,
                  0.0});
            return;
        }
        if (b == nullptr) {
            note(result.failures, {DiffKind::Removed, path,
                                   renderLeaf(*a), "-", 0.0, 0.0});
            return;
        }
        if (a->type() != b->type()) {
            note(result.failures,
                 {DiffKind::TypeChanged, path,
                  std::string(typeName(a->type())),
                  std::string(typeName(b->type())), 0.0, 0.0});
            return;
        }
        switch (a->type()) {
          case JsonValue::Type::Object:
            walkObject(path, *a, *b);
            return;
          case JsonValue::Type::Array:
            walkArray(path, *a, *b);
            return;
          default:
            compareLeaf(path, *a, *b, rule);
            return;
        }
    }

  private:
    const DiffOptions &options;
    DiffResult &result;

    void
    walkObject(const std::string &path, const JsonValue &a,
               const JsonValue &b)
    {
        // Canonical order: sorted union of both key sets, so the
        // report is stable however the files ordered their members.
        std::set<std::string> keys;
        for (const auto &[k, v] : a.members())
            keys.insert(k);
        for (const auto &[k, v] : b.members())
            keys.insert(k);
        for (const auto &k : keys) {
            std::string sub = path.empty() ? k : path + "." + k;
            walk(sub, a.get(k), b.get(k));
        }
    }

    void
    walkArray(const std::string &path, const JsonValue &a,
              const JsonValue &b)
    {
        std::size_t n = std::max(a.array().size(), b.array().size());
        for (std::size_t i = 0; i < n; ++i) {
            std::string sub = path + format("[%zu]", i);
            walk(sub,
                 i < a.array().size() ? &a.array()[i] : nullptr,
                 i < b.array().size() ? &b.array()[i] : nullptr);
        }
    }

    void
    compareLeaf(const std::string &path, const JsonValue &a,
                const JsonValue &b, const DiffRule *rule)
    {
        ++result.comparedLeaves;
        if (a.isNumber()) {
            double av = a.number(), bv = b.number();
            if (a.numberLexeme() == b.numberLexeme() || av == bv)
                return;
            double mag = std::max(std::fabs(av), std::fabs(bv));
            double relPct =
                mag > 0.0 ? std::fabs(av - bv) / mag * 100.0 : 0.0;
            double tol =
                rule != nullptr ? rule->tolerancePct : 0.0;
            DiffEntry e{DiffKind::Changed, path, a.numberLexeme(),
                        b.numberLexeme(), relPct, tol};
            note(relPct <= tol ? result.tolerated : result.failures,
                 std::move(e));
            return;
        }
        bool same = a.isString() ? a.string() == b.string()
                    : a.isBool() ? a.boolean() == b.boolean()
                                 : true; // null == null
        if (!same) {
            note(result.failures,
                 {DiffKind::Changed, path, renderLeaf(a),
                  renderLeaf(b), 0.0, 0.0});
        }
    }
};

void
sortEntries(std::vector<DiffEntry> &entries)
{
    std::stable_sort(entries.begin(), entries.end(),
                     [](const DiffEntry &a, const DiffEntry &b) {
                         return a.path < b.path;
                     });
}

const char *
kindLabel(DiffKind k)
{
    switch (k) {
      case DiffKind::Changed: return "changed";
      case DiffKind::Removed: return "removed";
      case DiffKind::Added: return "added";
      case DiffKind::TypeChanged: return "type-changed";
    }
    return "?";
}

void
renderEntryTable(std::string &out, const std::vector<DiffEntry> &es)
{
    out += "| path | kind | baseline | candidate | delta | "
           "tolerance |\n";
    out += "|---|---|---|---|---:|---:|\n";
    for (const auto &e : es) {
        out += format("| `%s` | %s | %s | %s | %s | %s |\n",
                      e.path.c_str(), kindLabel(e.kind),
                      e.before.c_str(), e.after.c_str(),
                      e.kind == DiffKind::Changed && e.relDeltaPct > 0
                          ? format("%.4f%%", e.relDeltaPct).c_str()
                          : "-",
                      e.tolerancePct > 0
                          ? format("%.4f%%", e.tolerancePct).c_str()
                          : "-");
    }
}

} // namespace

DiffResult
diffJson(const JsonValue &baseline, const JsonValue &candidate,
         const DiffOptions &options)
{
    DiffResult result;
    Differ d(options, result);
    d.walk("", &baseline, &candidate);
    sortEntries(result.failures);
    sortEntries(result.warnings);
    sortEntries(result.tolerated);
    return result;
}

std::string
renderDiffReport(const DiffResult &result, const std::string &aName,
                 const std::string &bName)
{
    std::string out;
    out += format("# genie_diff: `%s` vs `%s`\n\n", aName.c_str(),
                  bName.c_str());
    out += format("- verdict: **%s**\n",
                  result.clean() ? "PASS" : "FAIL");
    out += format("- leaves compared: %zu (ignored: %zu)\n",
                  result.comparedLeaves, result.ignoredLeaves);
    out += format("- failures: %zu, warnings: %zu, within "
                  "tolerance: %zu\n",
                  result.failures.size(), result.warnings.size(),
                  result.tolerated.size());
    if (!result.failures.empty()) {
        out += "\n## Failures\n\n";
        renderEntryTable(out, result.failures);
    }
    if (!result.warnings.empty()) {
        out += "\n## Warnings\n\n";
        renderEntryTable(out, result.warnings);
    }
    if (!result.tolerated.empty()) {
        out += "\n## Within tolerance\n\n";
        renderEntryTable(out, result.tolerated);
    }
    return out;
}

bool
parseDiffRule(const std::string &spec, DiffRule &out,
              std::string &error)
{
    auto eq = spec.rfind('=');
    if (eq == std::string::npos || eq == 0 ||
        eq + 1 >= spec.size()) {
        error = "expected GLOB=PCT or GLOB=ignore, got '" + spec +
                "'";
        return false;
    }
    out = DiffRule{};
    out.glob = spec.substr(0, eq);
    std::string value = spec.substr(eq + 1);
    if (value == "ignore") {
        out.ignore = true;
        return true;
    }
    if (!value.empty() && value.back() == '%')
        value.pop_back();
    char *end = nullptr;
    double pct = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0' || value.empty() ||
        pct < 0.0) {
        error = "bad tolerance '" + spec +
                "' (want a non-negative percent or 'ignore')";
        return false;
    }
    out.tolerancePct = pct;
    return true;
}

} // namespace genie
