/**
 * @file
 * Structural, tolerance-aware comparison of two Genie JSON documents
 * (genie-stats-1 metric exports, genie-bench-1 bench summaries).
 *
 * The comparison walks both documents as trees and reports leaf-level
 * differences by dotted path ("benches[0].sim.total_us"). Per-metric
 * rules — first glob match wins — decide how a path is judged:
 *
 *  - ignore: the path is skipped entirely (host-derived numbers such
 *    as wall_ms and MEPS can never compare equal across machines);
 *  - tolerance N%: numbers whose relative difference is within N%
 *    pass (recorded as tolerated, not failed).
 *
 * Keys present only in the newer document are *warnings* by default
 * so that adding a metric does not break every stored baseline;
 * --strict promotes them to failures. Keys that disappeared always
 * fail: a baseline metric silently vanishing is a regression in
 * itself.
 */

#ifndef GENIE_SCOPE_DIFF_HH
#define GENIE_SCOPE_DIFF_HH

#include <string>
#include <string_view>
#include <vector>

#include "scope/json.hh"
#include "sim/thread_safety.hh"

namespace genie
{

/**
 * Shell-style glob over a dotted path: '*' matches any run of
 * characters (including '.' — metric globs span levels on purpose),
 * '?' matches one character.
 */
bool globMatch(std::string_view pattern, std::string_view text);

/** One per-metric judgment rule. */
struct DiffRule GENIE_THREAD_LOCAL_OK
{
    std::string glob;
    /** Skip matching paths entirely. */
    bool ignore = false;
    /** Allowed relative difference, percent (0 = exact). */
    double tolerancePct = 0.0;
};

struct DiffOptions GENIE_THREAD_LOCAL_OK
{
    /** First matching rule wins; no match = exact comparison. */
    std::vector<DiffRule> rules;
    /** Promote added-key warnings to failures. */
    bool strict = false;
};

/**
 * The stock rule set for comparing this repository's own outputs
 * across runs/machines: ignore host-time-derived metrics (wall
 * clock, MEPS, points/s), compare everything else exactly.
 */
std::vector<DiffRule> defaultGenieDiffRules();

enum class DiffKind : std::uint8_t
{
    Changed,     ///< leaf values differ beyond tolerance
    Removed,     ///< path exists only in the baseline
    Added,       ///< path exists only in the candidate
    TypeChanged, ///< same path, different JSON type
};

struct DiffEntry GENIE_THREAD_LOCAL_OK
{
    DiffKind kind = DiffKind::Changed;
    std::string path;
    std::string before; ///< baseline rendering ("-" when absent)
    std::string after;  ///< candidate rendering ("-" when absent)
    /** Relative difference in percent (numbers only). */
    double relDeltaPct = 0.0;
    /** The tolerance the matching rule allowed. */
    double tolerancePct = 0.0;
};

struct DiffResult GENIE_THREAD_LOCAL_OK
{
    /** Differences that fail the comparison, in path order. */
    std::vector<DiffEntry> failures;
    /** Non-fatal notes (added keys under non-strict), path order. */
    std::vector<DiffEntry> warnings;
    /** Number differences inside an allowed tolerance, path order. */
    std::vector<DiffEntry> tolerated;
    /** Leaf paths compared (ignored paths excluded). */
    std::size_t comparedLeaves = 0;
    /** Leaf paths skipped by ignore rules. */
    std::size_t ignoredLeaves = 0;

    bool clean() const { return failures.empty(); }
};

/** Compare @p baseline against @p candidate under @p options. */
DiffResult diffJson(const JsonValue &baseline,
                    const JsonValue &candidate,
                    const DiffOptions &options);

/**
 * Render @p result as a deterministic markdown report. @p aName /
 * @p bName label the two documents (usually their file names).
 */
std::string renderDiffReport(const DiffResult &result,
                             const std::string &aName,
                             const std::string &bName);

/**
 * Parse a "GLOB=SPEC" rule string from the CLI, where SPEC is either
 * "ignore" or a percentage such as "0.5" or "2%". Returns false on a
 * malformed spec (message in @p error).
 */
bool parseDiffRule(const std::string &spec, DiffRule &out,
                   std::string &error);

} // namespace genie

#endif // GENIE_SCOPE_DIFF_HH
