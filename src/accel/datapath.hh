/**
 * @file
 * The accelerator datapath: a resource-constrained dataflow scheduler
 * over the DDDG, following Aladdin's execution model plus the paper's
 * system-level extensions:
 *
 *  - N datapath lanes; loop iteration i runs on lane (i mod N); a
 *    wave of N consecutive iterations executes concurrently and lanes
 *    synchronize at a barrier before the next wave (Section IV-D).
 *  - per-lane functional units (pipelined except the divider) with
 *    per-cycle issue limits,
 *  - scratchpad mode: partitioned banks with per-cycle port limits,
 *    optional full/empty ready bits that stall a lane until DMA fills
 *    the accessed line (DMA-triggered compute, Section IV-B2),
 *  - cache mode: accesses translate through the Aladdin TLB and issue
 *    to the accelerator cache; a miss stalls only the issuing lane
 *    (hit-under-miss via MSHRs); other lanes keep running,
 *  - a `perfectMemory` switch (all memory ops single-cycle) for the
 *    Figure-7 processing-time decomposition.
 */

#ifndef GENIE_ACCEL_DATAPATH_HH
#define GENIE_ACCEL_DATAPATH_HH

#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "accel/dddg.hh"
#include "accel/trace.hh"
#include "mem/cache.hh"
#include "mem/full_empty.hh"
#include "mem/scratchpad.hh"
#include "mem/tlb.hh"
#include "sim/clocked.hh"
#include "sim/interval_set.hh"
#include "sim/sim_object.hh"

namespace genie
{

class Datapath : public SimObject, public Clocked
{
  public:
    struct Params
    {
        unsigned lanes = 1;
        /** Per-lane, per-cycle issue limits by FU class. */
        unsigned intAluPerLane = 2;
        unsigned intMulPerLane = 1;
        unsigned fpAddPerLane = 1;
        unsigned fpMulPerLane = 1;
        unsigned otherPerLane = 2;
        /** Per-lane memory ops issued per cycle (bank/cache port
         * limits apply on top of this). */
        unsigned memOpsPerLane = 2;
        /** Figure-7 processing-time mode. */
        bool perfectMemory = false;
    };

    enum class MemMode : std::uint8_t
    {
        ScratchpadDma,
        Cache,
    };

    using DoneCallback = std::function<void()>;

    Datapath(std::string name, EventQueue &eq, ClockDomain domain,
             const Trace &trace, const Dddg &dddg, Params params,
             MemMode mode);

    /**
     * Scratchpad mode wiring. @p spadIds maps trace array ids to
     * scratchpad array ids; @p feIds maps trace array ids to
     * full/empty array ids (or empty to disable ready bits).
     */
    void attachScratchpad(Scratchpad *spad, std::vector<int> spadIds,
                          FullEmptyBits *fe, std::vector<int> feIds);

    /**
     * Cache mode wiring. @p arrayVBase gives each trace array's
     * simulated-virtual base address; private-scratch arrays instead
     * use the scratchpad (pass @p spad non-null if any exist).
     */
    void attachCache(Cache *cache, AladdinTlb *tlb,
                     std::vector<Addr> arrayVBase, Scratchpad *spad,
                     std::vector<int> spadIds);

    /** Begin executing the trace now. */
    void start(DoneCallback onDone);

    bool running() const { return active; }

    /** Cycles from start() to completion. */
    Cycles executedCycles() const { return endCycle - startCycle; }

    /** Intervals where at least one op was executing (the "compute"
     * activity for the paper's runtime breakdowns). */
    const IntervalSet &computeBusy() const { return busy; }

    /** Issued op counts per FU class (power model input). */
    const std::array<std::uint64_t, 6> &fuOpCounts() const
    {
        return fuOps;
    }

    double memStallCycles() const { return statMemStallCycles.value(); }

  private:
    struct LaneState
    {
        std::deque<NodeId> ready;
        /** Unresolved cache work (TLB walks in progress + outstanding
         * misses). The lane stalls while this is non-zero; hits do
         * not contribute (hit-under-miss is across lanes). */
        unsigned pendingMem = 0;
        /** Waiting on a full/empty ready bit. */
        bool blockedOnReadyBit = false;
        /** Divider is unpipelined: busy until this cycle. */
        Cycles divBusyUntil = 0;

        bool blocked() const { return pendingMem > 0 || blockedOnReadyBit; }
    };

    void tick();
    void scheduleTick();

    /** Outcome of an issue attempt. */
    enum class IssueResult : std::uint8_t
    {
        Issued,   ///< dispatched (or handed to the memory system)
        Skip,     ///< structural hazard; younger ready ops may issue
        StopLane, ///< lane-stalling condition (empty ready bit)
    };

    /** Number of ready-queue entries each lane may examine per cycle
     * (the dataflow scheduling window). */
    static constexpr unsigned issueScanWindow = 64;

    IssueResult tryIssue(NodeId n, unsigned lane);

    /** Schedule node completion just before the edge @p lat cycles
     * out, so dependents issue on that edge. */
    void scheduleCompletion(Cycles lat, NodeId n);

    IssueResult tryIssueCompute(NodeId n, unsigned lane,
                                const TraceOp &op);
    IssueResult tryIssueSpadAccess(NodeId n, unsigned lane,
                                   const TraceOp &op);
    IssueResult tryIssueCacheAccess(NodeId n, unsigned lane,
                                    const TraceOp &op);

    /** Issue the translated cache access (retries on port/MSHR
     * rejection). */
    void sendCacheAccess(NodeId n, unsigned lane, Addr paddr);

    void onNodeComplete(NodeId n);
    void enqueueReady(NodeId n);
    void advanceWave();
    void finishIfDrained();

    unsigned laneOf(NodeId n) const
    {
        return trace.ops[n].iteration % params.lanes;
    }
    std::uint32_t waveOf(NodeId n) const
    {
        return trace.ops[n].iteration / params.lanes;
    }

    /** Per-cycle issue counter reset. */
    void resetCycleCounters();

    /** Mirror an issued node's execution interval into the trace
     * (tracks are per-lane so waves render as parallel strips). */
    void traceNodeSpan(unsigned lane, const char *what, Tick beginTick,
                       Tick endTick);

    const Trace &trace;
    const Dddg &dddg;
    Params params;
    MemMode mode;

    // Wiring.
    Scratchpad *spad = nullptr;
    std::vector<int> spadIds;
    FullEmptyBits *feBits = nullptr;
    std::vector<int> feIds;
    Cache *cache = nullptr;
    AladdinTlb *tlb = nullptr;
    std::vector<Addr> arrayVBase;

    // Execution state.
    bool active = false;
    DoneCallback onDone;
    std::vector<std::uint32_t> pendingParents;
    std::vector<LaneState> lanes;
    std::uint32_t currentWave = 0;
    std::uint32_t numWaves = 0;
    std::vector<std::uint32_t> waveRemaining;
    /** Nodes that became ready before their wave started. */
    std::vector<std::vector<NodeId>> earlyReady;
    std::size_t completedNodes = 0;
    std::size_t inFlightOps = 0;

    Cycles startCycle = 0;
    Cycles endCycle = 0;
    bool tickScheduled = false;
    bool drainCheckScheduled = false;
    /** Last tick at which tick() ran; issue happens at most once per
     * clock edge (completions arriving mid-cycle wake the next
     * edge). */
    Tick lastTickAt = maxTick;

    // Per-cycle issue budgets.
    Cycles cycleStamp = 0;
    struct IssueCounters
    {
        unsigned intAlu = 0;
        unsigned intMul = 0;
        unsigned fpAdd = 0;
        unsigned fpMul = 0;
        unsigned other = 0;
        unsigned mem = 0;
    };
    std::vector<IssueCounters> issued;

    IntervalSet busy;
    std::array<std::uint64_t, 6> fuOps{};

    /** Precomputed per-lane trace track names. */
    std::vector<std::string> laneTracks;

    Stat &statNodes;
    Stat &statCycles;
    Stat &statMemStallCycles;
    Stat &statReadyBitStalls;
    Stat &statBankConflicts;
    Stat &statCacheRejects;
};

} // namespace genie

#endif // GENIE_ACCEL_DATAPATH_HH
