/**
 * @file
 * The dynamic data dependence graph (DDDG).
 *
 * Vertices are the trace's dynamic ops; edges are true dependences:
 * the register dependences recorded by the trace builder plus memory
 * dependences inferred from trace addresses (a load depends on the
 * most recent earlier store that wrote any byte it reads), exactly the
 * dataflow representation Aladdin schedules (Section III-B).
 */

#ifndef GENIE_ACCEL_DDDG_HH
#define GENIE_ACCEL_DDDG_HH

#include <cstdint>
#include <vector>

#include "accel/trace.hh"

namespace genie
{

class Dddg
{
  public:
    explicit Dddg(const Trace &trace);

    std::size_t numNodes() const { return parentCount.size(); }
    std::size_t numEdges() const { return edgeCount; }

    /** Consumers of node @p n (register + memory dependents). */
    const std::vector<NodeId> &children(NodeId n) const
    {
        return childLists[n];
    }

    /** Number of producers node @p n waits for. */
    std::uint32_t parents(NodeId n) const { return parentCount[n]; }

    /** Number of memory-dependence edges inferred from addresses. */
    std::size_t numMemoryEdges() const { return memEdges; }

    /**
     * Length of the longest dependence chain, weighted by op latency.
     * This is the resource-unconstrained lower bound on compute
     * cycles; the analytic validation model (Figure 4) uses it.
     */
    std::uint64_t criticalPathCycles(const Trace &trace) const;

  private:
    std::vector<std::vector<NodeId>> childLists;
    std::vector<std::uint32_t> parentCount;
    std::size_t edgeCount = 0;
    std::size_t memEdges = 0;
};

} // namespace genie

#endif // GENIE_ACCEL_DDDG_HH
