#include "trace_io.hh"

#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace genie
{

namespace
{

constexpr const char *magic = "genie-trace v1";

} // namespace

Opcode
opcodeFromName(const std::string &name)
{
    for (int i = 0; i <= static_cast<int>(Opcode::Nop); ++i) {
        auto op = static_cast<Opcode>(i);
        if (name == opcodeName(op))
            return op;
    }
    fatal("unknown opcode '%s' in trace", name.c_str());
}

void
writeTrace(std::ostream &os, const Trace &trace)
{
    os << magic << '\n';
    for (const auto &a : trace.arrays) {
        os << "array " << a.name << ' ' << a.sizeBytes << ' '
           << a.wordBytes << ' ' << (a.isInput ? 1 : 0) << ' '
           << (a.isOutput ? 1 : 0) << ' '
           << (a.privateScratch ? 1 : 0) << '\n';
    }
    std::uint32_t nextIter = 0;
    for (const auto &op : trace.ops) {
        while (nextIter <= op.iteration) {
            os << "iter\n";
            ++nextIter;
        }
        if (isMemoryOp(op.op)) {
            os << (op.op == Opcode::Load ? "ld " : "st ")
               << op.arrayId << ' ' << op.offset << ' '
               << static_cast<unsigned>(op.size);
        } else {
            os << "op " << opcodeName(op.op);
        }
        for (NodeId d : op.deps)
            os << ' ' << d;
        os << '\n';
    }
}

Trace
readTrace(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != magic)
        fatal("not a genie trace (bad magic '%s')", line.c_str());

    TraceBuilder tb;
    bool sawIter = false;
    std::size_t lineNo = 1;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string kind;
        ss >> kind;
        if (kind == "array") {
            std::string name;
            std::uint64_t size = 0;
            unsigned word = 0;
            int in = 0, outFlag = 0, priv = 0;
            ss >> name >> size >> word >> in >> outFlag >> priv;
            if (ss.fail())
                fatal("trace line %zu: malformed array", lineNo);
            tb.addArray(name, size, word, in != 0, outFlag != 0,
                        priv != 0);
        } else if (kind == "iter") {
            tb.beginIteration();
            sawIter = true;
        } else if (kind == "op") {
            if (!sawIter)
                fatal("trace line %zu: op before first iter", lineNo);
            std::string mnemonic;
            ss >> mnemonic;
            std::vector<NodeId> deps;
            NodeId d;
            while (ss >> d)
                deps.push_back(d);
            tb.op(opcodeFromName(mnemonic), deps);
        } else if (kind == "ld" || kind == "st") {
            if (!sawIter)
                fatal("trace line %zu: access before first iter",
                      lineNo);
            int arrayId = -1;
            Addr offset = 0;
            unsigned size = 0;
            ss >> arrayId >> offset >> size;
            if (ss.fail())
                fatal("trace line %zu: malformed access", lineNo);
            std::vector<NodeId> deps;
            NodeId d;
            while (ss >> d)
                deps.push_back(d);
            if (kind == "ld")
                tb.load(arrayId, offset, size, deps);
            else
                tb.store(arrayId, offset, size, deps);
        } else {
            fatal("trace line %zu: unknown record '%s'", lineNo,
                  kind.c_str());
        }
    }
    return tb.take();
}

void
saveTrace(const std::string &path, const Trace &trace)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    writeTrace(os, trace);
}

Trace
loadTrace(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s'", path.c_str());
    return readTrace(is);
}

} // namespace genie
