/**
 * @file
 * Dynamic execution traces and the trace-builder DSL.
 *
 * Aladdin profiles a C program with LLVM instrumentation to obtain a
 * dynamic trace; Genie's workloads instead *execute functionally in
 * C++* while recording the same information through a TraceBuilder:
 * every load, store, arithmetic op, and loop iteration boundary, with
 * explicit register dependences (the builder returns node ids that are
 * passed as dependences of later ops). Memory (store-to-load)
 * dependences are inferred later by the DDDG builder, exactly as
 * Aladdin infers them from trace addresses. See DESIGN.md
 * substitution #1.
 */

#ifndef GENIE_ACCEL_TRACE_HH
#define GENIE_ACCEL_TRACE_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "accel/opcode.hh"
#include "sim/types.hh"

namespace genie
{

/** Index of an op within a trace. */
using NodeId = std::uint32_t;
constexpr NodeId invalidNode = 0xffffffff;

/** One dynamic operation. */
struct TraceOp
{
    Opcode op = Opcode::Nop;
    /** For Load/Store: the accessed array. */
    std::int16_t arrayId = -1;
    /** For Load/Store: access size in bytes. */
    std::uint8_t size = 0;
    /** Loop iteration this op belongs to (drives lane assignment). */
    std::uint32_t iteration = 0;
    /** For Load/Store: byte offset within the array. */
    Addr offset = 0;
    /** Register (true) dependences: producers of this op's inputs. */
    std::vector<NodeId> deps;
};

/** A workload array visible to the accelerator. */
struct ArrayInfo
{
    std::string name;
    std::uint64_t sizeBytes = 0;
    unsigned wordBytes = 4;
    /** Transferred in before compute (flushed + DMA-loaded). */
    bool isInput = false;
    /** Transferred out after compute (invalidated + DMA-stored). */
    bool isOutput = false;
    /**
     * In cache mode, data that must be shared with the system goes
     * through the cache; private intermediate data stays in local
     * scratchpads (Section IV-D). Inputs/outputs default to shared.
     */
    bool privateScratch = false;
};

/** A complete dynamic trace. */
class Trace
{
  public:
    std::vector<ArrayInfo> arrays;
    std::vector<TraceOp> ops;
    std::uint32_t numIterations = 0;

    std::uint64_t
    totalInputBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &a : arrays)
            if (a.isInput)
                total += a.sizeBytes;
        return total;
    }

    std::uint64_t
    totalOutputBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &a : arrays)
            if (a.isOutput)
                total += a.sizeBytes;
        return total;
    }

    std::uint64_t
    totalArrayBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &a : arrays)
            total += a.sizeBytes;
        return total;
    }

    std::size_t
    countMemoryOps() const
    {
        std::size_t n = 0;
        for (const auto &op : ops)
            if (isMemoryOp(op.op))
                ++n;
        return n;
    }
};

/** The DSL with which workloads emit traces. */
class TraceBuilder
{
  public:
    TraceBuilder() = default;

    /** Register an array; @return its array id. */
    int addArray(const std::string &name, std::uint64_t sizeBytes,
                 unsigned wordBytes, bool isInput, bool isOutput,
                 bool privateScratch = false);

    /** Mark the start of the next loop iteration (work unit). */
    void beginIteration();

    /** Emit a load; @p deps are address-producing ops (for indirect
     * accesses) or previous values. @return the load's node id. */
    NodeId load(int arrayId, Addr offset, unsigned size,
                std::initializer_list<NodeId> deps = {});
    NodeId load(int arrayId, Addr offset, unsigned size,
                const std::vector<NodeId> &deps);

    /** Emit a store whose value is produced by @p deps. */
    NodeId store(int arrayId, Addr offset, unsigned size,
                 std::initializer_list<NodeId> deps = {});
    NodeId store(int arrayId, Addr offset, unsigned size,
                 const std::vector<NodeId> &deps);

    /** Emit a compute op depending on @p deps. */
    NodeId op(Opcode opcode, std::initializer_list<NodeId> deps = {});
    NodeId op(Opcode opcode, const std::vector<NodeId> &deps);

    /** Convenience chain: fold @p values with @p opcode pairwise
     * (balanced reduction tree). */
    NodeId reduce(Opcode opcode, std::vector<NodeId> values);

    /** Finish and take the trace. */
    Trace take();

    const Trace &peek() const { return trace; }

  private:
    NodeId emit(TraceOp op);

    Trace trace;
    std::uint32_t currentIteration = 0;
    bool anyIteration = false;
};

} // namespace genie

#endif // GENIE_ACCEL_TRACE_HH
