/**
 * @file
 * Trace serialization.
 *
 * Aladdin's workflow stores dynamic traces in files so that one
 * profiled execution can drive many design-space sweeps. Genie's
 * equivalent is a line-oriented text format:
 *
 *   genie-trace v1
 *   array <name> <sizeBytes> <wordBytes> <in> <out> <private>
 *   iter                          # begins the next iteration
 *   op <opcode> [dep...]          # compute op
 *   ld <arrayId> <offset> <size> [dep...]
 *   st <arrayId> <offset> <size> [dep...]
 *
 * Dependences are node indices (the implicit line order). The format
 * round-trips exactly: writeTrace followed by readTrace reproduces
 * the original Trace.
 */

#ifndef GENIE_ACCEL_TRACE_IO_HH
#define GENIE_ACCEL_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "accel/trace.hh"

namespace genie
{

/** Serialize @p trace to @p os. */
void writeTrace(std::ostream &os, const Trace &trace);

/** Parse a trace; fatal() on malformed input. */
Trace readTrace(std::istream &is);

/** File conveniences. */
void saveTrace(const std::string &path, const Trace &trace);
Trace loadTrace(const std::string &path);

/** Parse an opcode mnemonic (fatal() on unknown names). */
Opcode opcodeFromName(const std::string &name);

} // namespace genie

#endif // GENIE_ACCEL_TRACE_IO_HH
