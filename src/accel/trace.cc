#include "trace.hh"

#include "sim/logging.hh"

namespace genie
{

int
TraceBuilder::addArray(const std::string &name, std::uint64_t sizeBytes,
                       unsigned wordBytes, bool isInput, bool isOutput,
                       bool privateScratch)
{
    if (sizeBytes == 0 || wordBytes == 0)
        fatal("array '%s' needs non-zero size and word size",
              name.c_str());
    ArrayInfo info;
    info.name = name;
    info.sizeBytes = sizeBytes;
    info.wordBytes = wordBytes;
    info.isInput = isInput;
    info.isOutput = isOutput;
    info.privateScratch = privateScratch;
    trace.arrays.push_back(std::move(info));
    return static_cast<int>(trace.arrays.size() - 1);
}

void
TraceBuilder::beginIteration()
{
    if (anyIteration)
        ++currentIteration;
    anyIteration = true;
    trace.numIterations = currentIteration + 1;
}

NodeId
TraceBuilder::emit(TraceOp op)
{
    op.iteration = currentIteration;
    for (NodeId d : op.deps) {
        GENIE_ASSERT(d < trace.ops.size(),
                     "dependence on future node %u", d);
    }
    trace.ops.push_back(std::move(op));
    GENIE_ASSERT(trace.ops.size() < invalidNode, "trace too large");
    return static_cast<NodeId>(trace.ops.size() - 1);
}

NodeId
TraceBuilder::load(int arrayId, Addr offset, unsigned size,
                   std::initializer_list<NodeId> deps)
{
    return load(arrayId, offset, size, std::vector<NodeId>(deps));
}

NodeId
TraceBuilder::load(int arrayId, Addr offset, unsigned size,
                   const std::vector<NodeId> &deps)
{
    GENIE_ASSERT(arrayId >= 0 && static_cast<std::size_t>(arrayId) <
                     trace.arrays.size(),
                 "load from unknown array %d", arrayId);
    GENIE_ASSERT(offset + size <=
                     trace.arrays[static_cast<std::size_t>(arrayId)]
                         .sizeBytes,
                 "load out of bounds in array '%s'",
                 trace.arrays[static_cast<std::size_t>(arrayId)]
                     .name.c_str());
    TraceOp op;
    op.op = Opcode::Load;
    op.arrayId = static_cast<std::int16_t>(arrayId);
    op.offset = offset;
    op.size = static_cast<std::uint8_t>(size);
    op.deps = deps;
    return emit(std::move(op));
}

NodeId
TraceBuilder::store(int arrayId, Addr offset, unsigned size,
                    std::initializer_list<NodeId> deps)
{
    return store(arrayId, offset, size, std::vector<NodeId>(deps));
}

NodeId
TraceBuilder::store(int arrayId, Addr offset, unsigned size,
                    const std::vector<NodeId> &deps)
{
    GENIE_ASSERT(arrayId >= 0 && static_cast<std::size_t>(arrayId) <
                     trace.arrays.size(),
                 "store to unknown array %d", arrayId);
    GENIE_ASSERT(offset + size <=
                     trace.arrays[static_cast<std::size_t>(arrayId)]
                         .sizeBytes,
                 "store out of bounds in array '%s'",
                 trace.arrays[static_cast<std::size_t>(arrayId)]
                     .name.c_str());
    TraceOp op;
    op.op = Opcode::Store;
    op.arrayId = static_cast<std::int16_t>(arrayId);
    op.offset = offset;
    op.size = static_cast<std::uint8_t>(size);
    op.deps = deps;
    return emit(std::move(op));
}

NodeId
TraceBuilder::op(Opcode opcode, std::initializer_list<NodeId> deps)
{
    return op(opcode, std::vector<NodeId>(deps));
}

NodeId
TraceBuilder::op(Opcode opcode, const std::vector<NodeId> &deps)
{
    GENIE_ASSERT(!isMemoryOp(opcode),
                 "use load()/store() for memory ops");
    TraceOp o;
    o.op = opcode;
    o.deps = deps;
    return emit(std::move(o));
}

NodeId
TraceBuilder::reduce(Opcode opcode, std::vector<NodeId> values)
{
    GENIE_ASSERT(!values.empty(), "reduce of zero values");
    while (values.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < values.size(); i += 2)
            next.push_back(op(opcode, {values[i], values[i + 1]}));
        if (values.size() % 2 == 1)
            next.push_back(values.back());
        values = std::move(next);
    }
    return values[0];
}

Trace
TraceBuilder::take()
{
    Trace t = std::move(trace);
    trace = Trace{};
    currentIteration = 0;
    anyIteration = false;
    return t;
}

} // namespace genie
