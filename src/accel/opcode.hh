/**
 * @file
 * The accelerator micro-op vocabulary.
 *
 * Aladdin traces are streams of LLVM IR instructions; Genie's traces
 * use an equivalent small vocabulary of dataflow ops with fixed
 * functional-unit latencies (calibrated to what HLS produces for a
 * 10 ns / 100 MHz accelerator clock, the paper's operating point).
 */

#ifndef GENIE_ACCEL_OPCODE_HH
#define GENIE_ACCEL_OPCODE_HH

#include <cstdint>

#include "power/energy_model.hh"
#include "sim/types.hh"

namespace genie
{

enum class Opcode : std::uint8_t
{
    IntAdd,   ///< integer add/sub
    IntMul,
    IntCmp,   ///< compare/select
    Shift,
    Logic,    ///< and/or/xor
    Index,    ///< address computation (gep)
    Mov,
    FpAdd,    ///< FP add/sub
    FpMul,
    FpDiv,    ///< FP div/sqrt
    Load,
    Store,
    Branch,
    Nop,
};

constexpr bool
isMemoryOp(Opcode op)
{
    return op == Opcode::Load || op == Opcode::Store;
}

constexpr bool
isComputeOp(Opcode op)
{
    return !isMemoryOp(op);
}

/** Functional-unit class used for issue limits and energy lookup. */
constexpr FuKind
fuKindOf(Opcode op)
{
    switch (op) {
      case Opcode::IntAdd:
      case Opcode::IntCmp:
      case Opcode::Shift:
      case Opcode::Logic:
        return FuKind::IntAlu;
      case Opcode::IntMul:
        return FuKind::IntMul;
      case Opcode::FpAdd:
        return FuKind::FpAdd;
      case Opcode::FpMul:
        return FuKind::FpMul;
      case Opcode::FpDiv:
        return FuKind::FpDiv;
      default:
        return FuKind::Other;
    }
}

/** Execution latency in accelerator cycles (pipelined units). */
constexpr Cycles
latencyOf(Opcode op)
{
    switch (op) {
      case Opcode::IntMul: return 2;
      case Opcode::FpAdd:  return 3;
      case Opcode::FpMul:  return 4;
      case Opcode::FpDiv:  return 12;
      default:             return 1;
    }
}

constexpr const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::IntAdd: return "IntAdd";
      case Opcode::IntMul: return "IntMul";
      case Opcode::IntCmp: return "IntCmp";
      case Opcode::Shift:  return "Shift";
      case Opcode::Logic:  return "Logic";
      case Opcode::Index:  return "Index";
      case Opcode::Mov:    return "Mov";
      case Opcode::FpAdd:  return "FpAdd";
      case Opcode::FpMul:  return "FpMul";
      case Opcode::FpDiv:  return "FpDiv";
      case Opcode::Load:   return "Load";
      case Opcode::Store:  return "Store";
      case Opcode::Branch: return "Branch";
      case Opcode::Nop:    return "Nop";
    }
    return "?";
}

} // namespace genie

#endif // GENIE_ACCEL_OPCODE_HH
