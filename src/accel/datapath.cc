#include "datapath.hh"

#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace genie
{

Datapath::Datapath(std::string name, EventQueue &eq, ClockDomain domain,
                   const Trace &trace_, const Dddg &dddg_, Params p,
                   MemMode mode_)
    : SimObject(std::move(name)), Clocked(eq, domain), trace(trace_),
      dddg(dddg_), params(p), mode(mode_),
      statNodes(stats().add("nodes", "DDDG nodes executed")),
      statCycles(stats().add("cycles", "accelerator cycles to finish")),
      statMemStallCycles(stats().add("memStallCycles",
                                     "lane-cycles blocked on memory")),
      statReadyBitStalls(stats().add("readyBitStalls",
                                     "loads stalled on full/empty bits")),
      statBankConflicts(stats().add("bankConflicts",
                                    "scratchpad bank conflict retries")),
      statCacheRejects(stats().add("cacheRejects",
                                   "cache port/MSHR rejections"))
{
    if (params.lanes == 0)
        fatal("datapath needs at least one lane");
    eq.registerStats(stats());
    for (unsigned l = 0; l < params.lanes; ++l)
        laneTracks.push_back(format("%s.lane%u", this->name().c_str(), l));
}

void
Datapath::traceNodeSpan(unsigned lane, const char *what, Tick beginTick,
                        Tick endTick)
{
    if (Tracer *t = tracerFor(eventq, TraceCategory::Datapath)) {
        t->complete(TraceCategory::Datapath, laneTracks[lane], what,
                    beginTick, endTick);
    }
}

void
Datapath::attachScratchpad(Scratchpad *spad_, std::vector<int> spadIds_,
                           FullEmptyBits *fe, std::vector<int> feIds_)
{
    GENIE_ASSERT(mode == MemMode::ScratchpadDma,
                 "attachScratchpad in cache mode");
    spad = spad_;
    spadIds = std::move(spadIds_);
    feBits = fe;
    feIds = std::move(feIds_);
}

void
Datapath::attachCache(Cache *cache_, AladdinTlb *tlb_,
                      std::vector<Addr> vbase, Scratchpad *spad_,
                      std::vector<int> spadIds_)
{
    GENIE_ASSERT(mode == MemMode::Cache, "attachCache in DMA mode");
    cache = cache_;
    tlb = tlb_;
    arrayVBase = std::move(vbase);
    spad = spad_;
    spadIds = std::move(spadIds_);
    if (cache) {
        cache->setCallback([this](std::uint64_t reqId, bool hit) {
            auto n = static_cast<NodeId>(reqId);
            if (!hit) {
                // The miss kept its lane stalled until now; hits were
                // uncounted at accept time.
                LaneState &lane = lanes[laneOf(n)];
                GENIE_ASSERT(lane.pendingMem > 0,
                             "miss completion with no pending access");
                --lane.pendingMem;
            }
            onNodeComplete(n);
            scheduleTick();
        });
    }
}

void
Datapath::start(DoneCallback done)
{
    GENIE_ASSERT(!active, "datapath already running");
    const std::size_t n = trace.ops.size();
    GENIE_ASSERT(n > 0, "empty trace");

    active = true;
    onDone = std::move(done);
    completedNodes = 0;
    inFlightOps = 0;
    currentWave = 0;
    startCycle = curCycle();
    lastTickAt = maxTick;

    pendingParents.assign(n, 0);
    for (NodeId i = 0; i < n; ++i)
        pendingParents[i] = dddg.parents(i);

    numWaves = (trace.numIterations + params.lanes - 1) / params.lanes;
    if (numWaves == 0)
        numWaves = 1;
    waveRemaining.assign(numWaves, 0);
    earlyReady.assign(numWaves, {});
    for (NodeId i = 0; i < n; ++i)
        ++waveRemaining[waveOf(i)];

    lanes.assign(params.lanes, LaneState{});
    issued.assign(params.lanes, IssueCounters{});
    cycleStamp = curCycle();

    for (NodeId i = 0; i < n; ++i) {
        if (pendingParents[i] == 0)
            enqueueReady(i);
    }
    scheduleTick();
}

void
Datapath::enqueueReady(NodeId n)
{
    std::uint32_t w = waveOf(n);
    if (w == currentWave) {
        lanes[laneOf(n)].ready.push_back(n);
        scheduleTick();
    } else {
        GENIE_ASSERT(w > currentWave, "ready node in a finished wave");
        earlyReady[w].push_back(n);
    }
}

void
Datapath::scheduleTick()
{
    if (!active || tickScheduled)
        return;
    tickScheduled = true;
    Tick at = clockEdge(0);
    if (lastTickAt != maxTick && at <= lastTickAt)
        at = lastTickAt + clockPeriod();
    // Raw dispatch (Genie-Turbo): the two hottest event kinds in the
    // tree — accel.tick and accel.nodeComplete — skip std::function
    // entirely.
    eventq.scheduleFlowRaw(at, [](void *c, std::uint64_t) {
        auto *self = static_cast<Datapath *>(c);
        self->tickScheduled = false;
        self->tick();
    }, this, 0, "accel.tick");
}

void
Datapath::resetCycleCounters()
{
    Cycles now = curCycle();
    if (now != cycleStamp) {
        cycleStamp = now;
        std::fill(issued.begin(), issued.end(), IssueCounters{});
    }
}

void
Datapath::tick()
{
    if (!active)
        return;
    lastTickAt = eventq.curTick();
    resetCycleCounters();

    bool anyReadyLeft = false;
    for (unsigned l = 0; l < params.lanes; ++l) {
        LaneState &lane = lanes[l];
        if (lane.blocked()) {
            if (!lane.ready.empty())
                ++statMemStallCycles;
            continue;
        }
        // Dataflow issue with a bounded scheduling window: hazarded
        // ops are skipped so younger independent ops may still go.
        unsigned scanned = 0;
        for (auto it = lane.ready.begin();
             it != lane.ready.end() && scanned < issueScanWindow;) {
            ++scanned;
            IssueResult res = tryIssue(*it, l);
            if (res == IssueResult::Issued) {
                it = lane.ready.erase(it);
                if (lane.blocked())
                    break;
            } else if (res == IssueResult::Skip) {
                ++it;
            } else {
                break; // lane-stalling condition
            }
        }
        if (!lane.ready.empty() && !lane.blocked())
            anyReadyLeft = true;
    }

    // Structural hazards resolve by aging one cycle; memory blocks
    // resolve via callbacks which re-schedule the tick. scheduleTick
    // respects the one-tick-per-cycle guard even if a synchronous
    // callback already scheduled the next edge during the issue loop.
    if (anyReadyLeft)
        scheduleTick();
}

Datapath::IssueResult
Datapath::tryIssue(NodeId n, unsigned lane)
{
    const TraceOp &op = trace.ops[n];
    if (!isMemoryOp(op.op))
        return tryIssueCompute(n, lane, op);

    if (params.perfectMemory) {
        if (issued[lane].mem >= params.memOpsPerLane)
            return IssueResult::Skip;
        ++issued[lane].mem;
        ++inFlightOps;
        Tick now = clockEdge(0);
        busy.add(now, now + clockPeriod());
        traceNodeSpan(lane, "mem", now, now + clockPeriod());
        scheduleCompletion(1, n);
        return IssueResult::Issued;
    }

    // In cache mode, arrays wired to the scratchpad (private
    // intermediates and register-promoted small constant tables)
    // bypass the cache.
    bool isScratchArray =
        mode == MemMode::ScratchpadDma ||
        (static_cast<std::size_t>(op.arrayId) < spadIds.size() &&
         spadIds[static_cast<std::size_t>(op.arrayId)] >= 0);
    if (isScratchArray)
        return tryIssueSpadAccess(n, lane, op);
    return tryIssueCacheAccess(n, lane, op);
}

Datapath::IssueResult
Datapath::tryIssueCompute(NodeId n, unsigned lane, const TraceOp &op)
{
    IssueCounters &c = issued[lane];
    FuKind kind = fuKindOf(op.op);
    switch (kind) {
      case FuKind::IntAlu:
        if (c.intAlu >= params.intAluPerLane)
            return IssueResult::Skip;
        ++c.intAlu;
        break;
      case FuKind::IntMul:
        if (c.intMul >= params.intMulPerLane)
            return IssueResult::Skip;
        ++c.intMul;
        break;
      case FuKind::FpAdd:
        if (c.fpAdd >= params.fpAddPerLane)
            return IssueResult::Skip;
        ++c.fpAdd;
        break;
      case FuKind::FpMul:
        if (c.fpMul >= params.fpMulPerLane)
            return IssueResult::Skip;
        ++c.fpMul;
        break;
      case FuKind::FpDiv:
        // The divider is unpipelined.
        if (lanes[lane].divBusyUntil > curCycle())
            return IssueResult::Skip;
        lanes[lane].divBusyUntil =
            curCycle() + latencyOf(Opcode::FpDiv);
        break;
      case FuKind::Other:
        if (c.other >= params.otherPerLane)
            return IssueResult::Skip;
        ++c.other;
        break;
    }

    ++fuOps[static_cast<std::size_t>(kind)];
    ++inFlightOps;
    Cycles lat = latencyOf(op.op);
    Tick now = clockEdge(0);
    busy.add(now, now + cyclesToTicks(lat));
    traceNodeSpan(lane, "compute", now, now + cyclesToTicks(lat));
    scheduleCompletion(lat, n);
    return IssueResult::Issued;
}

void
Datapath::scheduleCompletion(Cycles lat, NodeId n)
{
    // Results are available *at* the clock edge `lat` cycles after
    // issue: complete one tick before that edge so dependents can
    // issue on the edge itself (otherwise every dependence level
    // would silently cost an extra cycle).
    Tick when = clockEdge(lat);
    GENIE_ASSERT(when > 0, "completion before time begins");
    eventq.scheduleFlowRaw(when - 1, [](void *c, std::uint64_t node) {
        static_cast<Datapath *>(c)->onNodeComplete(
            static_cast<NodeId>(node));
    }, this, n, "accel.nodeComplete");
}

Datapath::IssueResult
Datapath::tryIssueSpadAccess(NodeId n, unsigned lane, const TraceOp &op)
{
    auto arr = static_cast<std::size_t>(op.arrayId);

    // DMA-triggered compute: a load must find its line's ready bit
    // set, or the lane stalls until the DMA engine fills it
    // (Section IV-B2: the control logic stalls the whole lane).
    if (op.op == Opcode::Load && feBits && arr < feIds.size() &&
        feIds[arr] >= 0) {
        if (!feBits->isFull(feIds[arr], op.offset)) {
            ++statReadyBitStalls;
            lanes[lane].blockedOnReadyBit = true;
            feBits->wait(feIds[arr], op.offset, [this, lane] {
                lanes[lane].blockedOnReadyBit = false;
                scheduleTick();
            });
            return IssueResult::StopLane;
        }
    }

    if (issued[lane].mem >= params.memOpsPerLane)
        return IssueResult::Skip;

    GENIE_ASSERT(spad && arr < spadIds.size() && spadIds[arr] >= 0,
                 "array '%s' not mapped to a scratchpad",
                 trace.arrays[arr].name.c_str());
    if (!spad->tryAccess(spadIds[arr], op.offset,
                         op.op == Opcode::Store)) {
        ++statBankConflicts;
        return IssueResult::Skip;
    }

    ++issued[lane].mem;
    ++inFlightOps;
    Tick now = clockEdge(0);
    busy.add(now, now + clockPeriod());
    traceNodeSpan(lane, "mem", now, now + clockPeriod());
    scheduleCompletion(1, n);
    return IssueResult::Issued;
}

Datapath::IssueResult
Datapath::tryIssueCacheAccess(NodeId n, unsigned lane, const TraceOp &op)
{
    if (issued[lane].mem >= params.memOpsPerLane)
        return IssueResult::Skip;
    if (!cache->portAvailable())
        return IssueResult::Skip;

    ++issued[lane].mem;
    ++inFlightOps;
    Tick now = clockEdge(0);
    busy.add(now, now + clockPeriod());
    traceNodeSpan(lane, "mem", now, now + clockPeriod());

    // The lane blocks until the access is known to hit (decremented
    // synchronously below for TLB-hit + cache-hit) or until the miss
    // resolves (decremented in the cache callback).
    ++lanes[lane].pendingMem;

    Addr vaddr = arrayVBase[static_cast<std::size_t>(op.arrayId)] +
                 op.offset;
    tlb->translate(vaddr, [this, n, lane](Addr paddr) {
        sendCacheAccess(n, lane, paddr);
    });
    return IssueResult::Issued;
}

void
Datapath::sendCacheAccess(NodeId n, unsigned lane, Addr paddr)
{
    const TraceOp &op = trace.ops[n];
    auto outcome = cache->access(paddr, op.size,
                                 op.op == Opcode::Store, n,
                                 /*streamId=*/op.arrayId);
    if (outcome.reject != Cache::Reject::None) {
        ++statCacheRejects;
        scheduleCycles(1, [this, n, lane, paddr] {
            sendCacheAccess(n, lane, paddr);
        }, "accel.cacheRetry");
        return;
    }
    if (outcome.hit) {
        // Hits are pipelined: the lane keeps issuing; the completion
        // callback will arrive after hitLatency.
        GENIE_ASSERT(lanes[lane].pendingMem > 0,
                     "hit with no pending access");
        --lanes[lane].pendingMem;
        scheduleTick();
    }
}

void
Datapath::onNodeComplete(NodeId n)
{
    GENIE_ASSERT(inFlightOps > 0, "completion with nothing in flight");
    --inFlightOps;
    ++completedNodes;
    ++statNodes;

    std::uint32_t w = waveOf(n);
    GENIE_ASSERT(waveRemaining[w] > 0, "wave count underflow");
    --waveRemaining[w];

    for (NodeId c : dddg.children(n)) {
        GENIE_ASSERT(pendingParents[c] > 0, "parent count underflow");
        if (--pendingParents[c] == 0)
            enqueueReady(c);
    }

    if (w == currentWave && waveRemaining[w] == 0)
        advanceWave();

    if (completedNodes == trace.ops.size())
        finishIfDrained();
}

void
Datapath::advanceWave()
{
    while (currentWave + 1 < numWaves &&
           waveRemaining[currentWave] == 0) {
        ++currentWave;
        for (NodeId n : earlyReady[currentWave]) {
            lanes[laneOf(n)].ready.push_back(n);
        }
        earlyReady[currentWave].clear();
        if (waveRemaining[currentWave] != 0)
            break;
    }
    scheduleTick();
}

void
Datapath::finishIfDrained()
{
    // In cache mode, wait for outstanding writebacks to retire (the
    // mfence before signaling the CPU, Section III-E).
    if (cache && cache->hasOutstanding()) {
        if (!drainCheckScheduled) {
            drainCheckScheduled = true;
            scheduleCyclesRaw(1, [](void *c, std::uint64_t) {
                auto *self = static_cast<Datapath *>(c);
                self->drainCheckScheduled = false;
                self->finishIfDrained();
            }, this, 0, "accel.drainCheck");
        }
        return;
    }

    active = false;
    // The last completion fires one tick before its clock edge; the
    // accelerator is architecturally done *at* that edge.
    endCycle = ticksToCycles(eventq.curTick());
    statCycles = static_cast<double>(endCycle - startCycle);
    if (onDone) {
        DoneCallback done = std::move(onDone);
        onDone = nullptr;
        eventq.scheduleFlow(clockEdge(0), std::move(done),
                            "accel.done");
    }
}

} // namespace genie
