#include "dddg.hh"

#include <algorithm>
#include <unordered_map>

#include "sim/logging.hh"

namespace genie
{

namespace
{

/** Key for the last-writer map: array id + byte offset word. */
constexpr std::uint64_t
memKey(int arrayId, Addr byteAddr)
{
    return (static_cast<std::uint64_t>(
                static_cast<std::uint16_t>(arrayId))
            << 48) |
           (byteAddr & 0xffffffffffffull);
}

} // namespace

Dddg::Dddg(const Trace &trace)
{
    const std::size_t n = trace.ops.size();
    childLists.resize(n);
    parentCount.assign(n, 0);

    // Last store covering each (array, word) location. Word
    // granularity (4 bytes) bounds map size; accesses are word
    // aligned in all workloads.
    std::unordered_map<std::uint64_t, NodeId> lastWriter;
    lastWriter.reserve(n / 4 + 16);

    auto addEdge = [&](NodeId from, NodeId to) {
        GENIE_ASSERT(from < to, "DDDG edge must go forward");
        childLists[from].push_back(to);
        ++parentCount[to];
        ++edgeCount;
    };

    constexpr unsigned wordGran = 4;

    for (NodeId i = 0; i < n; ++i) {
        const TraceOp &op = trace.ops[i];
        for (NodeId d : op.deps)
            addEdge(d, i);

        if (op.op == Opcode::Load) {
            // True (RAW) memory dependences.
            NodeId lastDep = invalidNode;
            for (Addr a = alignDown(op.offset, wordGran);
                 a < op.offset + op.size; a += wordGran) {
                auto it = lastWriter.find(memKey(op.arrayId, a));
                if (it != lastWriter.end() && it->second != lastDep) {
                    addEdge(it->second, i);
                    ++memEdges;
                    lastDep = it->second;
                }
            }
        } else if (op.op == Opcode::Store) {
            for (Addr a = alignDown(op.offset, wordGran);
                 a < op.offset + op.size; a += wordGran) {
                lastWriter[memKey(op.arrayId, a)] = i;
            }
        }
    }

    // Deduplicate child lists (an op may depend on the same producer
    // through several inputs, e.g. x*x). Duplicate counting must
    // happen before std::unique, whose discarded tail holds
    // unspecified values.
    for (auto &list : childLists) {
        std::sort(list.begin(), list.end());
        for (std::size_t i = 1; i < list.size(); ++i) {
            if (list[i] == list[i - 1]) {
                --parentCount[list[i]];
                --edgeCount;
            }
        }
        list.erase(std::unique(list.begin(), list.end()),
                   list.end());
    }
}

std::uint64_t
Dddg::criticalPathCycles(const Trace &trace) const
{
    std::vector<std::uint64_t> depth(numNodes(), 0);
    std::uint64_t best = 0;
    for (NodeId i = 0; i < numNodes(); ++i) {
        std::uint64_t finish =
            depth[i] + latencyOf(trace.ops[i].op);
        best = std::max(best, finish);
        for (NodeId c : children(i))
            depth[c] = std::max(depth[c], finish);
    }
    return best;
}

} // namespace genie
