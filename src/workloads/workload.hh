/**
 * @file
 * The workload interface: MachSuite-style accelerated kernels.
 *
 * Each workload provides
 *   - build():     execute the kernel functionally in C++ *while*
 *                  emitting its dynamic trace through the TraceBuilder
 *                  DSL, returning the trace plus a checksum of the
 *                  kernel's outputs, and
 *   - reference(): an independent, straightforward C++ implementation
 *                  returning the same checksum.
 * The test suite asserts the two checksums agree for every workload,
 * which keeps traces honest: they are real executions of the kernel,
 * not synthetic op soups (DESIGN.md substitution #1/#4).
 *
 * Input data is generated deterministically from a fixed per-workload
 * seed, so every simulation is bit-reproducible.
 */

#ifndef GENIE_WORKLOADS_WORKLOAD_HH
#define GENIE_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "accel/trace.hh"
#include "sim/random.hh"

namespace genie
{

struct WorkloadOutput
{
    Trace trace;
    double checksum = 0.0;
};

class Workload
{
  public:
    virtual ~Workload() = default;

    /** MachSuite-style benchmark name (e.g. "gemm-ncubed"). */
    virtual std::string name() const = 0;

    /** Short description of the kernel and its memory behavior. */
    virtual std::string description() const = 0;

    /** Execute functionally and emit the dynamic trace. */
    virtual WorkloadOutput build() const = 0;

    /** Independent reference implementation (checksum only). */
    virtual double reference() const = 0;
};

using WorkloadPtr = std::unique_ptr<Workload>;

/** Names of all registered workloads, in canonical order. */
std::vector<std::string> workloadNames();

/** Instantiate a workload by name; fatal() on unknown names. */
WorkloadPtr makeWorkload(const std::string &name);

/** The eight benchmarks Figure 8/9/10 study, in the paper's order
 * (left-to-right by preference for DMA vs cache). */
std::vector<std::string> figure8Workloads();

} // namespace genie

#endif // GENIE_WORKLOADS_WORKLOAD_HH
