/**
 * @file
 * Workload registry: names and factories.
 */

#include "workloads/workload_impl.hh"

namespace genie
{

namespace
{

struct Entry
{
    const char *name;
    WorkloadPtr (*factory)();
};

const Entry entries[] = {
    {"aes-aes", makeAes},
    {"nw-nw", makeNw},
    {"gemm-ncubed", makeGemm},
    {"stencil-stencil2d", makeStencil2d},
    {"stencil-stencil3d", makeStencil3d},
    {"md-knn", makeMdKnn},
    {"spmv-crs", makeSpmvCrs},
    {"fft-transpose", makeFftTranspose},
    {"bfs-queue", makeBfsQueue},
    {"sort-merge", makeSortMerge},
    {"viterbi-viterbi", makeViterbi},
    {"kmp-kmp", makeKmp},
    {"gemm-blocked", makeGemmBlocked},
    {"sort-radix", makeSortRadix},
    {"md-grid", makeMdGrid},
    {"spmv-ellpack", makeSpmvEllpack},
};

} // namespace

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &e : entries)
        names.emplace_back(e.name);
    return names;
}

WorkloadPtr
makeWorkload(const std::string &name)
{
    for (const auto &e : entries) {
        if (name == e.name)
            return e.factory();
    }
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
figure8Workloads()
{
    return {"aes-aes",           "nw-nw",
            "gemm-ncubed",       "stencil-stencil2d",
            "stencil-stencil3d", "md-knn",
            "spmv-crs",          "fft-transpose"};
}

} // namespace genie
