/**
 * @file
 * aes-aes: AES-256 ECB encryption of one 16-byte block (MachSuite
 * aes/aes).
 *
 * Memory behavior: almost no data (a 32 B key, a 256 B S-box, one
 * 16 B block) and strictly serial rounds. Only a small amount of data
 * is needed before computation can start, so DMA always wins; a cache
 * design first eats a TLB miss and cold misses for nothing
 * (Figure 8a).
 */

#include "workloads/workload_impl.hh"

#include <array>

namespace genie
{

namespace
{

constexpr unsigned rounds = 14; // AES-256
constexpr unsigned blockBytes = 16;

/** Rijndael S-box. */
std::array<std::uint8_t, 256>
makeSbox()
{
    // Computed algebraically (multiplicative inverse + affine map) so
    // no 256-entry literal table is needed.
    std::array<std::uint8_t, 256> sbox{};
    auto mul = [](std::uint8_t a, std::uint8_t b) {
        std::uint8_t p = 0;
        for (int i = 0; i < 8; ++i) {
            if (b & 1)
                p ^= a;
            bool hi = a & 0x80;
            a = static_cast<std::uint8_t>(a << 1);
            if (hi)
                a ^= 0x1b;
            b >>= 1;
        }
        return p;
    };
    // Inverses by brute force (fine at build time for 256 entries).
    std::array<std::uint8_t, 256> inv{};
    for (unsigned a = 1; a < 256; ++a) {
        for (unsigned b = 1; b < 256; ++b) {
            if (mul(static_cast<std::uint8_t>(a),
                    static_cast<std::uint8_t>(b)) == 1) {
                inv[a] = static_cast<std::uint8_t>(b);
                break;
            }
        }
    }
    for (unsigned c = 0; c < 256; ++c) {
        std::uint8_t x = inv[c];
        std::uint8_t s = static_cast<std::uint8_t>(
            x ^ static_cast<std::uint8_t>((x << 1) | (x >> 7)) ^
            static_cast<std::uint8_t>((x << 2) | (x >> 6)) ^
            static_cast<std::uint8_t>((x << 3) | (x >> 5)) ^
            static_cast<std::uint8_t>((x << 4) | (x >> 4)) ^ 0x63);
        sbox[c] = s;
    }
    return sbox;
}

std::array<std::uint8_t, 32>
makeKey()
{
    Rng rng(0xae5);
    std::array<std::uint8_t, 32> k{};
    for (auto &b : k)
        b = static_cast<std::uint8_t>(rng.below(256));
    return k;
}

std::array<std::uint8_t, blockBytes>
makeBlock()
{
    Rng rng(0xae6);
    std::array<std::uint8_t, blockBytes> b{};
    for (auto &v : b)
        v = static_cast<std::uint8_t>(rng.below(256));
    return b;
}

std::uint8_t
xtime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^
                                     ((x >> 7) ? 0x1b : 0x00));
}

/** Functional single-block AES-256-ish encryption (simplified key
 * schedule: round key r is the key bytes rotated by r, which keeps
 * the kernel's op mix without a full Rijndael expansion). */
std::array<std::uint8_t, blockBytes>
encrypt(const std::array<std::uint8_t, 256> &sbox,
        const std::array<std::uint8_t, 32> &key,
        std::array<std::uint8_t, blockBytes> state)
{
    for (unsigned r = 0; r < rounds; ++r) {
        // SubBytes.
        for (auto &b : state)
            b = sbox[b];
        // ShiftRows.
        std::array<std::uint8_t, blockBytes> t = state;
        for (unsigned row = 1; row < 4; ++row)
            for (unsigned col = 0; col < 4; ++col)
                state[row + 4 * col] =
                    t[row + 4 * ((col + row) % 4)];
        // MixColumns (skipped in the final round, as in AES).
        if (r + 1 != rounds) {
            for (unsigned col = 0; col < 4; ++col) {
                std::uint8_t *s = &state[4 * col];
                std::uint8_t a0 = s[0], a1 = s[1], a2 = s[2],
                             a3 = s[3];
                s[0] = static_cast<std::uint8_t>(
                    xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
                s[1] = static_cast<std::uint8_t>(
                    a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
                s[2] = static_cast<std::uint8_t>(
                    a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
                s[3] = static_cast<std::uint8_t>(
                    (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
            }
        }
        // AddRoundKey.
        for (unsigned i = 0; i < blockBytes; ++i)
            state[i] ^= key[(i + r) % 32];
    }
    return state;
}

} // namespace

class AesWorkload : public Workload
{
  public:
    std::string name() const override { return "aes-aes"; }

    std::string
    description() const override
    {
        return "AES-256 single-block encryption; tiny data, serial "
               "rounds";
    }

    WorkloadOutput
    build() const override
    {
        auto sbox = makeSbox();
        auto key = makeKey();
        auto block = makeBlock();

        TraceBuilder tb;
        int abox = tb.addArray("sbox", 256, 1, true, false);
        int akey = tb.addArray("key", 32, 1, true, false);
        int abuf = tb.addArray("buf", blockBytes, 1, true, true);

        // One trace iteration per round; rounds serialize through the
        // state buffer's memory dependences. The functional state is
        // tracked alongside so indirect S-box addresses are real.
        std::array<std::uint8_t, blockBytes> state = block;
        for (unsigned r = 0; r < rounds; ++r) {
            tb.beginIteration();
            NodeId sub[blockBytes];
            for (unsigned i = 0; i < blockBytes; ++i) {
                NodeId ls = tb.load(abuf, i, 1);
                // Indirect S-box lookup: address from the state byte.
                sub[i] = tb.load(abox, state[i], 1, {ls});
            }
            for (auto &b : state)
                b = sbox[b];
            {
                std::array<std::uint8_t, blockBytes> t = state;
                for (unsigned row = 1; row < 4; ++row)
                    for (unsigned col = 0; col < 4; ++col)
                        state[row + 4 * col] =
                            t[row + 4 * ((col + row) % 4)];
                if (r + 1 != rounds) {
                    for (unsigned col = 0; col < 4; ++col) {
                        std::uint8_t *s = &state[4 * col];
                        std::uint8_t a0 = s[0], a1 = s[1], a2 = s[2],
                                     a3 = s[3];
                        s[0] = static_cast<std::uint8_t>(
                            xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
                        s[1] = static_cast<std::uint8_t>(
                            a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
                        s[2] = static_cast<std::uint8_t>(
                            a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
                        s[3] = static_cast<std::uint8_t>(
                            (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
                    }
                }
                for (unsigned i = 0; i < blockBytes; ++i)
                    state[i] ^= key[(i + r) % 32];
            }
            // ShiftRows is wiring (Mov), MixColumns is xor/xtime
            // logic, AddRoundKey is one xor per byte.
            NodeId mixed[blockBytes];
            for (unsigned col = 0; col < 4; ++col) {
                for (unsigned row = 0; row < 4; ++row) {
                    unsigned i = row + 4 * col;
                    NodeId shifted = tb.op(Opcode::Mov,
                                           {sub[row + 4 *
                                                ((col + row) % 4)]});
                    NodeId x1 = tb.op(Opcode::Shift, {shifted});
                    NodeId x2 = tb.op(Opcode::Logic, {x1, shifted});
                    mixed[i] = tb.op(Opcode::Logic, {x2});
                }
            }
            for (unsigned i = 0; i < blockBytes; ++i) {
                NodeId lk = tb.load(akey, (i + r) % 32, 1);
                NodeId xored =
                    tb.op(Opcode::Logic, {mixed[i], lk});
                tb.store(abuf, i, 1, {xored});
            }
        }

        WorkloadOutput result;
        result.trace = tb.take();
        for (unsigned i = 0; i < blockBytes; ++i)
            result.checksum += static_cast<double>(state[i]);
        return result;
    }

    double
    reference() const override
    {
        auto cipher = encrypt(makeSbox(), makeKey(), makeBlock());
        double checksum = 0.0;
        for (unsigned i = 0; i < blockBytes; ++i)
            checksum += static_cast<double>(cipher[i]);
        return checksum;
    }
};

WorkloadPtr
makeAes()
{
    return std::make_unique<AesWorkload>();
}

} // namespace genie
