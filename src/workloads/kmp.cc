/**
 * @file
 * kmp: Knuth-Morris-Pratt substring search (MachSuite kmp/kmp).
 *
 * Memory behavior: a single streaming pass over a large text with a
 * tiny pattern and failure table — very low compute per byte, the
 * canonical data-movement-bound kernel (high DMA share in Figure 2b).
 */

#include "workloads/workload_impl.hh"

namespace genie
{

namespace
{

constexpr unsigned patternLen = 4;
constexpr unsigned textLen = 4096;

std::vector<std::int32_t>
makeText()
{
    Rng rng(0x6b3a);
    std::vector<std::int32_t> t(textLen);
    for (auto &c : t)
        c = static_cast<std::int32_t>(rng.below(4)); // small alphabet
    return t;
}

std::vector<std::int32_t>
makePattern()
{
    return {0, 1, 0, 2};
}

std::vector<std::int32_t>
buildFailureTable(const std::vector<std::int32_t> &pattern)
{
    std::vector<std::int32_t> kmpNext(patternLen, 0);
    std::int32_t k = 0;
    for (unsigned q = 1; q < patternLen; ++q) {
        while (k > 0 &&
               pattern[static_cast<std::size_t>(k)] != pattern[q])
            k = kmpNext[static_cast<std::size_t>(k - 1)];
        if (pattern[static_cast<std::size_t>(k)] == pattern[q])
            ++k;
        kmpNext[q] = k;
    }
    return kmpNext;
}

} // namespace

class KmpWorkload : public Workload
{
  public:
    std::string name() const override { return "kmp-kmp"; }

    std::string
    description() const override
    {
        return "KMP search of a 4-char pattern in 16 KB of text; "
               "streaming, compute-light";
    }

    WorkloadOutput
    build() const override
    {
        auto text = makeText();
        auto pattern = makePattern();
        auto kmpNext = buildFailureTable(pattern);

        TraceBuilder tb;
        int apat = tb.addArray("pattern", patternLen * 4, 4, true,
                               false);
        int anext = tb.addArray("kmpNext", patternLen * 4, 4, true,
                                false);
        int atxt = tb.addArray("input", textLen * 4, 4, true, false);
        int amat = tb.addArray("nMatches", 4, 4, false, true);

        std::int32_t matches = 0;
        std::int32_t q = 0;
        NodeId lastMatchStore = invalidNode;
        // One iteration per text chunk keeps lane work units coarse
        // enough to matter (the inner chars are sequential anyway).
        constexpr unsigned chunk = 32;
        for (unsigned base = 0; base < textLen; base += chunk) {
            tb.beginIteration();
            for (unsigned i = base; i < base + chunk; ++i) {
                NodeId lc = tb.load(atxt, i * 4, 4);
                while (q > 0 &&
                       pattern[static_cast<std::size_t>(q)] !=
                           text[i]) {
                    NodeId ln = tb.load(
                        anext,
                        static_cast<Addr>(q - 1) * 4, 4, {lc});
                    NodeId lp2 = tb.load(
                        apat, static_cast<Addr>(q) * 4, 4, {ln});
                    tb.op(Opcode::IntCmp, {lp2, lc});
                    q = kmpNext[static_cast<std::size_t>(q - 1)];
                }
                NodeId lp = tb.load(
                    apat, static_cast<Addr>(q) * 4, 4);
                NodeId cmp = tb.op(Opcode::IntCmp, {lp, lc});
                if (pattern[static_cast<std::size_t>(q)] == text[i])
                    ++q;
                if (q >= static_cast<std::int32_t>(patternLen)) {
                    ++matches;
                    q = kmpNext[patternLen - 1];
                    std::vector<NodeId> deps = {cmp};
                    if (lastMatchStore != invalidNode)
                        deps.push_back(lastMatchStore);
                    NodeId inc = tb.op(Opcode::IntAdd, deps);
                    lastMatchStore = tb.store(amat, 0, 4, {inc});
                }
            }
        }

        WorkloadOutput result;
        result.trace = tb.take();
        result.checksum = static_cast<double>(matches);
        return result;
    }

    double
    reference() const override
    {
        auto text = makeText();
        auto pattern = makePattern();
        auto kmpNext = buildFailureTable(pattern);
        std::int32_t matches = 0;
        std::int32_t q = 0;
        for (unsigned i = 0; i < textLen; ++i) {
            while (q > 0 &&
                   pattern[static_cast<std::size_t>(q)] != text[i])
                q = kmpNext[static_cast<std::size_t>(q - 1)];
            if (pattern[static_cast<std::size_t>(q)] == text[i])
                ++q;
            if (q >= static_cast<std::int32_t>(patternLen)) {
                ++matches;
                q = kmpNext[patternLen - 1];
            }
        }
        return static_cast<double>(matches);
    }
};

WorkloadPtr
makeKmp()
{
    return std::make_unique<KmpWorkload>();
}

} // namespace genie
