/**
 * @file
 * stencil-stencil3d: 7-point stencil over a 3-D grid (MachSuite
 * stencil/stencil3d). This is the paper's Figure 1 motivating kernel.
 *
 * Memory behavior: the three-dimensional access pattern creates
 * nonuniform stride lengths (unit stride in z, +-cols in y, +-plane in
 * x), which the on-demand cache handles gracefully while even the most
 * optimized DMA design waits for bulk arrival (Figure 8e).
 */

#include "workloads/workload_impl.hh"

namespace genie
{

namespace
{

// height (z, innermost) x cols (y) x rows (x)
constexpr unsigned hz = 10;
constexpr unsigned cy = 18;
constexpr unsigned rx = 18;

constexpr std::size_t
idx(unsigned i, unsigned j, unsigned k)
{
    return (static_cast<std::size_t>(i) * cy + j) * hz + k;
}

std::vector<std::int32_t>
makeGrid()
{
    Rng rng(0x57e4c3d);
    std::vector<std::int32_t> g(rx * cy * hz);
    for (auto &v : g)
        v = static_cast<std::int32_t>(rng.below(128));
    return g;
}

constexpr std::int32_t c0 = 2;
constexpr std::int32_t c1 = 1;

} // namespace

class Stencil3dWorkload : public Workload
{
  public:
    std::string name() const override { return "stencil-stencil3d"; }

    std::string
    description() const override
    {
        return "7-point 3-D stencil on an 18x18x10 int grid; "
               "nonuniform strides";
    }

    WorkloadOutput
    build() const override
    {
        auto grid = makeGrid();
        std::vector<std::int32_t> sol(grid.size(), 0);

        TraceBuilder tb;
        int in = tb.addArray("orig", grid.size() * 4, 4, true, false);
        int out = tb.addArray("sol", grid.size() * 4, 4, false, true);

        for (unsigned i = 1; i < rx - 1; ++i) {
            for (unsigned j = 1; j < cy - 1; ++j) {
                tb.beginIteration();
                for (unsigned k = 1; k < hz - 1; ++k) {
                    NodeId center = tb.load(in, idx(i, j, k) * 4, 4);
                    NodeId mulC =
                        tb.op(Opcode::IntMul, {center});
                    std::vector<NodeId> nbrs;
                    nbrs.push_back(
                        tb.load(in, idx(i - 1, j, k) * 4, 4));
                    nbrs.push_back(
                        tb.load(in, idx(i + 1, j, k) * 4, 4));
                    nbrs.push_back(
                        tb.load(in, idx(i, j - 1, k) * 4, 4));
                    nbrs.push_back(
                        tb.load(in, idx(i, j + 1, k) * 4, 4));
                    nbrs.push_back(
                        tb.load(in, idx(i, j, k - 1) * 4, 4));
                    nbrs.push_back(
                        tb.load(in, idx(i, j, k + 1) * 4, 4));
                    NodeId sumN = tb.reduce(Opcode::IntAdd, nbrs);
                    NodeId mulN = tb.op(Opcode::IntMul, {sumN});
                    NodeId total =
                        tb.op(Opcode::IntAdd, {mulC, mulN});
                    tb.store(out, idx(i, j, k) * 4, 4, {total});

                    std::int32_t sum =
                        c0 * grid[idx(i, j, k)] +
                        c1 * (grid[idx(i - 1, j, k)] +
                              grid[idx(i + 1, j, k)] +
                              grid[idx(i, j - 1, k)] +
                              grid[idx(i, j + 1, k)] +
                              grid[idx(i, j, k - 1)] +
                              grid[idx(i, j, k + 1)]);
                    sol[idx(i, j, k)] = sum;
                }
            }
        }

        WorkloadOutput result;
        result.trace = tb.take();
        for (std::int32_t v : sol)
            result.checksum += static_cast<double>(v);
        return result;
    }

    double
    reference() const override
    {
        auto grid = makeGrid();
        double checksum = 0.0;
        for (unsigned i = 1; i < rx - 1; ++i) {
            for (unsigned j = 1; j < cy - 1; ++j) {
                for (unsigned k = 1; k < hz - 1; ++k) {
                    std::int32_t sum =
                        c0 * grid[idx(i, j, k)] +
                        c1 * (grid[idx(i - 1, j, k)] +
                              grid[idx(i + 1, j, k)] +
                              grid[idx(i, j - 1, k)] +
                              grid[idx(i, j + 1, k)] +
                              grid[idx(i, j, k - 1)] +
                              grid[idx(i, j, k + 1)]);
                    checksum += static_cast<double>(sum);
                }
            }
        }
        return checksum;
    }
};

WorkloadPtr
makeStencil3d()
{
    return std::make_unique<Stencil3dWorkload>();
}

} // namespace genie
