/**
 * @file
 * Shared includes and the factory hooks each workload translation
 * unit exports toward the registry.
 */

#ifndef GENIE_WORKLOADS_WORKLOAD_IMPL_HH
#define GENIE_WORKLOADS_WORKLOAD_IMPL_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace genie
{

WorkloadPtr makeAes();
WorkloadPtr makeNw();
WorkloadPtr makeGemm();
WorkloadPtr makeStencil2d();
WorkloadPtr makeStencil3d();
WorkloadPtr makeMdKnn();
WorkloadPtr makeSpmvCrs();
WorkloadPtr makeFftTranspose();
WorkloadPtr makeBfsQueue();
WorkloadPtr makeSortMerge();
WorkloadPtr makeViterbi();
WorkloadPtr makeKmp();
WorkloadPtr makeGemmBlocked();
WorkloadPtr makeSortRadix();
WorkloadPtr makeMdGrid();
WorkloadPtr makeSpmvEllpack();

} // namespace genie

#endif // GENIE_WORKLOADS_WORKLOAD_IMPL_HH
