/**
 * @file
 * md-knn: k-nearest-neighbor molecular dynamics force computation
 * (MachSuite md/knn). The paper's Figure 2a timeline kernel.
 *
 * Memory behavior: compute-intensive — 12+ FP multiplies and an
 * unpipelined reciprocal per atom-to-atom interaction dominate power.
 * The neighbor list is read in order, so ready bits are extremely
 * effective: with just four lanes the paper reports 99% compute/DMA
 * overlap (Section IV-C1); DMA and cache Pareto curves largely
 * overlap (Figure 8f).
 */

#include "workloads/workload_impl.hh"

namespace genie
{

namespace
{

constexpr unsigned atoms = 128;
constexpr unsigned neighbors = 16;

struct Positions
{
    std::vector<double> x, y, z;
};

Positions
makePositions()
{
    Rng rng(0x3d411);
    Positions p;
    p.x.resize(atoms);
    p.y.resize(atoms);
    p.z.resize(atoms);
    for (unsigned i = 0; i < atoms; ++i) {
        p.x[i] = rng.range(0.0, 20.0);
        p.y[i] = rng.range(0.0, 20.0);
        p.z[i] = rng.range(0.0, 20.0);
    }
    return p;
}

std::vector<std::int32_t>
makeNeighborList()
{
    Rng rng(0x3d412);
    std::vector<std::int32_t> nl(atoms * neighbors);
    for (unsigned i = 0; i < atoms; ++i) {
        for (unsigned j = 0; j < neighbors; ++j) {
            std::uint64_t n = rng.below(atoms - 1);
            if (n >= i)
                ++n; // never self
            nl[i * neighbors + j] = static_cast<std::int32_t>(n);
        }
    }
    return nl;
}

/** Lennard-Jones-ish force term used by MachSuite md. */
inline void
ljForce(double dx, double dy, double dz, double &fx, double &fy,
        double &fz)
{
    double r2 = dx * dx + dy * dy + dz * dz;
    double r2inv = 1.0 / r2;
    double r6inv = r2inv * r2inv * r2inv;
    double potential = r6inv * (1.5 * r6inv - 2.0);
    double force = r2inv * potential;
    fx += dx * force;
    fy += dy * force;
    fz += dz * force;
}

} // namespace

class MdKnnWorkload : public Workload
{
  public:
    std::string name() const override { return "md-knn"; }

    std::string
    description() const override
    {
        return "k-NN molecular dynamics, 128 atoms x 16 neighbors; "
               "FP-multiply dominant";
    }

    WorkloadOutput
    build() const override
    {
        auto pos = makePositions();
        auto nl = makeNeighborList();
        std::vector<double> fx(atoms, 0.0), fy(atoms, 0.0),
            fz(atoms, 0.0);

        TraceBuilder tb;
        int ax = tb.addArray("pos_x", atoms * 8, 8, true, false);
        int ay = tb.addArray("pos_y", atoms * 8, 8, true, false);
        int az = tb.addArray("pos_z", atoms * 8, 8, true, false);
        int anl = tb.addArray("NL", atoms * neighbors * 4, 4, true,
                              false);
        int afx = tb.addArray("force_x", atoms * 8, 8, false, true);
        int afy = tb.addArray("force_y", atoms * 8, 8, false, true);
        int afz = tb.addArray("force_z", atoms * 8, 8, false, true);

        for (unsigned i = 0; i < atoms; ++i) {
            tb.beginIteration();
            NodeId ix = tb.load(ax, i * 8, 8);
            NodeId iy = tb.load(ay, i * 8, 8);
            NodeId iz = tb.load(az, i * 8, 8);
            NodeId sfx = invalidNode, sfy = invalidNode,
                   sfz = invalidNode;
            double vfx = 0.0, vfy = 0.0, vfz = 0.0;

            for (unsigned j = 0; j < neighbors; ++j) {
                NodeId lidx =
                    tb.load(anl, (i * neighbors + j) * 4, 4);
                auto n = static_cast<unsigned>(
                    nl[i * neighbors + j]);
                // The neighbor's coordinates are indirect loads whose
                // addresses depend on the NL entry.
                NodeId jx = tb.load(ax, n * 8, 8, {lidx});
                NodeId jy = tb.load(ay, n * 8, 8, {lidx});
                NodeId jz = tb.load(az, n * 8, 8, {lidx});

                NodeId dx = tb.op(Opcode::FpAdd, {ix, jx});
                NodeId dy = tb.op(Opcode::FpAdd, {iy, jy});
                NodeId dz = tb.op(Opcode::FpAdd, {iz, jz});
                NodeId dx2 = tb.op(Opcode::FpMul, {dx, dx});
                NodeId dy2 = tb.op(Opcode::FpMul, {dy, dy});
                NodeId dz2 = tb.op(Opcode::FpMul, {dz, dz});
                NodeId r2 =
                    tb.reduce(Opcode::FpAdd, {dx2, dy2, dz2});
                NodeId r2inv = tb.op(Opcode::FpDiv, {r2});
                NodeId r4 = tb.op(Opcode::FpMul, {r2inv, r2inv});
                NodeId r6 = tb.op(Opcode::FpMul, {r4, r2inv});
                NodeId t1 = tb.op(Opcode::FpMul, {r6});
                NodeId t2 = tb.op(Opcode::FpAdd, {t1});
                NodeId pot = tb.op(Opcode::FpMul, {r6, t2});
                NodeId force = tb.op(Opcode::FpMul, {r2inv, pot});
                NodeId ffx = tb.op(Opcode::FpMul, {dx, force});
                NodeId ffy = tb.op(Opcode::FpMul, {dy, force});
                NodeId ffz = tb.op(Opcode::FpMul, {dz, force});
                sfx = sfx == invalidNode
                          ? ffx
                          : tb.op(Opcode::FpAdd, {sfx, ffx});
                sfy = sfy == invalidNode
                          ? ffy
                          : tb.op(Opcode::FpAdd, {sfy, ffy});
                sfz = sfz == invalidNode
                          ? ffz
                          : tb.op(Opcode::FpAdd, {sfz, ffz});

                ljForce(pos.x[i] - pos.x[n], pos.y[i] - pos.y[n],
                        pos.z[i] - pos.z[n], vfx, vfy, vfz);
            }
            tb.store(afx, i * 8, 8, {sfx});
            tb.store(afy, i * 8, 8, {sfy});
            tb.store(afz, i * 8, 8, {sfz});
            fx[i] = vfx;
            fy[i] = vfy;
            fz[i] = vfz;
        }

        WorkloadOutput result;
        result.trace = tb.take();
        for (unsigned i = 0; i < atoms; ++i)
            result.checksum += fx[i] + fy[i] + fz[i];
        return result;
    }

    double
    reference() const override
    {
        auto pos = makePositions();
        auto nl = makeNeighborList();
        double checksum = 0.0;
        for (unsigned i = 0; i < atoms; ++i) {
            double vfx = 0.0, vfy = 0.0, vfz = 0.0;
            for (unsigned j = 0; j < neighbors; ++j) {
                auto n = static_cast<unsigned>(
                    nl[i * neighbors + j]);
                ljForce(pos.x[i] - pos.x[n], pos.y[i] - pos.y[n],
                        pos.z[i] - pos.z[n], vfx, vfy, vfz);
            }
            checksum += vfx + vfy + vfz;
        }
        return checksum;
    }
};

WorkloadPtr
makeMdKnn()
{
    return std::make_unique<MdKnnWorkload>();
}

} // namespace genie
