/**
 * @file
 * gemm-blocked: blocked (tiled) matrix-matrix multiply (MachSuite
 * gemm/blocked).
 *
 * Memory behavior: same arithmetic as gemm-ncubed but iterating over
 * BxB tiles, so each loaded block is reused B times — far better
 * temporal locality, which a small cache captures where the ncubed
 * loop order cannot.
 */

#include "workloads/workload_impl.hh"

namespace genie
{

namespace
{

constexpr unsigned dim = 24;
constexpr unsigned blockDim = 8;

std::vector<double>
makeMatrix(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> m(dim * dim);
    for (auto &v : m)
        v = rng.range(-1.0, 1.0);
    return m;
}

} // namespace

class GemmBlockedWorkload : public Workload
{
  public:
    std::string name() const override { return "gemm-blocked"; }

    std::string
    description() const override
    {
        return "tiled 24x24 double GEMM (8x8 blocks); high temporal "
               "reuse per tile";
    }

    WorkloadOutput
    build() const override
    {
        auto matA = makeMatrix(0x6b10);
        auto matB = makeMatrix(0x6b11);
        std::vector<double> matC(dim * dim, 0.0);

        TraceBuilder tb;
        int a = tb.addArray("m1", dim * dim * 8, 8, true, false);
        int b = tb.addArray("m2", dim * dim * 8, 8, true, false);
        int c = tb.addArray("prod", dim * dim * 8, 8, false, true);

        // Track the last store per C element so accumulation across
        // k-blocks carries an explicit dependence chain.
        std::vector<NodeId> lastStore(dim * dim, invalidNode);

        for (unsigned jj = 0; jj < dim; jj += blockDim) {
            for (unsigned kk = 0; kk < dim; kk += blockDim) {
                for (unsigned i = 0; i < dim; ++i) {
                    tb.beginIteration();
                    for (unsigned j = jj; j < jj + blockDim; ++j) {
                        NodeId acc = invalidNode;
                        double sum = 0.0;
                        for (unsigned k = kk; k < kk + blockDim;
                             ++k) {
                            NodeId la =
                                tb.load(a, (i * dim + k) * 8, 8);
                            NodeId lb =
                                tb.load(b, (k * dim + j) * 8, 8);
                            NodeId mul =
                                tb.op(Opcode::FpMul, {la, lb});
                            acc = acc == invalidNode
                                      ? mul
                                      : tb.op(Opcode::FpAdd,
                                              {acc, mul});
                            sum += matA[i * dim + k] *
                                   matB[k * dim + j];
                        }
                        std::size_t ci = i * dim + j;
                        std::vector<NodeId> deps = {acc};
                        if (kk > 0) {
                            NodeId prev = tb.load(c, ci * 8, 8);
                            deps.push_back(
                                tb.op(Opcode::FpAdd, {acc, prev}));
                        }
                        lastStore[ci] = tb.store(c, ci * 8, 8, deps);
                        matC[ci] += sum;
                    }
                }
            }
        }

        WorkloadOutput result;
        result.trace = tb.take();
        for (double v : matC)
            result.checksum += v;
        return result;
    }

    double
    reference() const override
    {
        auto matA = makeMatrix(0x6b10);
        auto matB = makeMatrix(0x6b11);
        double checksum = 0.0;
        for (unsigned i = 0; i < dim; ++i) {
            for (unsigned j = 0; j < dim; ++j) {
                double sum = 0.0;
                for (unsigned k = 0; k < dim; ++k)
                    sum += matA[i * dim + k] * matB[k * dim + j];
                checksum += sum;
            }
        }
        return checksum;
    }
};

WorkloadPtr
makeGemmBlocked()
{
    return std::make_unique<GemmBlockedWorkload>();
}

} // namespace genie
