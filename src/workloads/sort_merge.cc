/**
 * @file
 * sort-merge: bottom-up merge sort (MachSuite sort/merge).
 *
 * Memory behavior: streaming passes over the whole array with a
 * ping-pong temporary buffer; log2(n) full sweeps mean a low
 * compute-to-memory ratio — a data-movement-bound kernel under DMA.
 */

#include "workloads/workload_impl.hh"

namespace genie
{

namespace
{

constexpr unsigned count = 512;

std::vector<std::int32_t>
makeData()
{
    Rng rng(0x5047);
    std::vector<std::int32_t> d(count);
    for (auto &v : d)
        v = static_cast<std::int32_t>(rng.below(1u << 20));
    return d;
}

} // namespace

class SortMergeWorkload : public Workload
{
  public:
    std::string name() const override { return "sort-merge"; }

    std::string
    description() const override
    {
        return "bottom-up merge sort of 512 ints; streaming "
               "ping-pong passes";
    }

    WorkloadOutput
    build() const override
    {
        auto data = makeData();
        std::vector<std::int32_t> temp(count, 0);

        TraceBuilder tb;
        int aa = tb.addArray("a", count * 4, 4, true, true);
        int at = tb.addArray("temp", count * 4, 4, false, false,
                             /*privateScratch=*/true);

        // Bottom-up merge: width doubles each pass; source and
        // destination ping-pong between a and temp.
        bool inA = true;
        for (unsigned width = 1; width < count; width *= 2) {
            int src = inA ? aa : at;
            int dst = inA ? at : aa;
            auto &srcv = inA ? data : temp;
            auto &dstv = inA ? temp : data;
            for (unsigned lo = 0; lo < count; lo += 2 * width) {
                tb.beginIteration();
                unsigned mid = std::min(lo + width, count);
                unsigned hi = std::min(lo + 2 * width, count);
                unsigned i = lo, j = mid;
                for (unsigned k = lo; k < hi; ++k) {
                    bool takeLeft =
                        i < mid &&
                        (j >= hi || srcv[i] <= srcv[j]);
                    unsigned pick = takeLeft ? i : j;
                    NodeId l1 = tb.load(src, pick * 4, 4);
                    NodeId cmp = tb.op(Opcode::IntCmp, {l1});
                    tb.store(dst, k * 4, 4, {cmp});
                    dstv[k] = srcv[pick];
                    if (takeLeft)
                        ++i;
                    else
                        ++j;
                }
            }
            inA = !inA;
        }
        // If the sorted result ended in temp, copy back.
        if (!inA) {
            tb.beginIteration();
            for (unsigned k = 0; k < count; ++k) {
                NodeId l = tb.load(at, k * 4, 4);
                tb.store(aa, k * 4, 4, {l});
                data[k] = temp[k];
            }
        }

        WorkloadOutput result;
        result.trace = tb.take();
        for (unsigned k = 0; k < count; ++k)
            result.checksum +=
                static_cast<double>(data[k]) * (k % 7 + 1);
        return result;
    }

    double
    reference() const override
    {
        auto data = makeData();
        std::sort(data.begin(), data.end());
        double checksum = 0.0;
        for (unsigned k = 0; k < count; ++k)
            checksum += static_cast<double>(data[k]) * (k % 7 + 1);
        return checksum;
    }
};

WorkloadPtr
makeSortMerge()
{
    return std::make_unique<SortMergeWorkload>();
}

} // namespace genie
