/**
 * @file
 * fft-transpose: a transpose-based FFT in which each work item
 * performs an 8-point butterfly over elements strided 64 doubles
 * (512 bytes) apart (MachSuite fft/transpose).
 *
 * Memory behavior: no indirection, but each lane touches only eight
 * bytes per 512 bytes of sequentially arriving data, so even with
 * ready bits a DMA design must supply nearly all data before compute
 * can proceed; a cache fetches just the strided lines it needs
 * (Figure 8h).
 */

#include "workloads/workload_impl.hh"

namespace genie
{

namespace
{

constexpr unsigned points = 512;
constexpr unsigned radix = 8;
constexpr unsigned stride = points / radix; // 64 elements = 512 B
constexpr unsigned groups = points / radix; // butterflies per pass
constexpr unsigned passes = 2;

std::vector<double>
makeSignal(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> s(points);
    for (auto &v : s)
        v = rng.range(-1.0, 1.0);
    return s;
}

/** One in-place radix-8-style butterfly (simplified twiddle-free
 * decimation: pairwise add/sub tree, as MachSuite's integer-heavy
 * loop structure). */
template <typename Vec>
void
butterfly(Vec &re, Vec &im, unsigned base)
{
    double tr[radix], ti[radix];
    for (unsigned k = 0; k < radix; ++k) {
        tr[k] = re[base + k * stride];
        ti[k] = im[base + k * stride];
    }
    for (unsigned k = 0; k < radix / 2; ++k) {
        double ar = tr[k] + tr[k + radix / 2];
        double ai = ti[k] + ti[k + radix / 2];
        double br = tr[k] - tr[k + radix / 2];
        double bi = ti[k] - ti[k + radix / 2];
        re[base + k * stride] = ar;
        im[base + k * stride] = ai;
        re[base + (k + radix / 2) * stride] = br * 0.5 + bi * 0.5;
        im[base + (k + radix / 2) * stride] = bi * 0.5 - br * 0.5;
    }
}

} // namespace

class FftTransposeWorkload : public Workload
{
  public:
    std::string name() const override { return "fft-transpose"; }

    std::string
    description() const override
    {
        return "512-point transpose FFT; 512-byte strided 8-point "
               "work items";
    }

    WorkloadOutput
    build() const override
    {
        auto re = makeSignal(0xff71);
        auto im = makeSignal(0xff72);

        TraceBuilder tb;
        int are = tb.addArray("work_x", points * 8, 8, true, true);
        int aim = tb.addArray("work_y", points * 8, 8, true, true);

        for (unsigned pass = 0; pass < passes; ++pass) {
            for (unsigned g = 0; g < groups; ++g) {
                tb.beginIteration();
                NodeId lre[radix], lim[radix];
                for (unsigned k = 0; k < radix; ++k) {
                    lre[k] =
                        tb.load(are, (g + k * stride) * 8, 8);
                    lim[k] =
                        tb.load(aim, (g + k * stride) * 8, 8);
                }
                for (unsigned k = 0; k < radix / 2; ++k) {
                    unsigned k2 = k + radix / 2;
                    NodeId ar =
                        tb.op(Opcode::FpAdd, {lre[k], lre[k2]});
                    NodeId ai =
                        tb.op(Opcode::FpAdd, {lim[k], lim[k2]});
                    NodeId br =
                        tb.op(Opcode::FpAdd, {lre[k], lre[k2]});
                    NodeId bi =
                        tb.op(Opcode::FpAdd, {lim[k], lim[k2]});
                    NodeId brw = tb.op(Opcode::FpMul, {br});
                    NodeId biw = tb.op(Opcode::FpMul, {bi});
                    NodeId tw1 = tb.op(Opcode::FpAdd, {brw, biw});
                    NodeId tw2 = tb.op(Opcode::FpAdd, {biw, brw});
                    tb.store(are, (g + k * stride) * 8, 8, {ar});
                    tb.store(aim, (g + k * stride) * 8, 8, {ai});
                    tb.store(are, (g + k2 * stride) * 8, 8, {tw1});
                    tb.store(aim, (g + k2 * stride) * 8, 8, {tw2});
                }
                butterfly(re, im, g);
            }
        }

        WorkloadOutput result;
        result.trace = tb.take();
        for (unsigned i = 0; i < points; ++i)
            result.checksum += re[i] + im[i];
        return result;
    }

    double
    reference() const override
    {
        auto re = makeSignal(0xff71);
        auto im = makeSignal(0xff72);
        for (unsigned pass = 0; pass < passes; ++pass)
            for (unsigned g = 0; g < groups; ++g)
                butterfly(re, im, g);
        double checksum = 0.0;
        for (unsigned i = 0; i < points; ++i)
            checksum += re[i] + im[i];
        return checksum;
    }
};

WorkloadPtr
makeFftTranspose()
{
    return std::make_unique<FftTransposeWorkload>();
}

} // namespace genie
