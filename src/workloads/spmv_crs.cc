/**
 * @file
 * spmv-crs: sparse matrix-vector multiply in compressed-row-storage
 * form (MachSuite spmv/crs).
 *
 * Memory behavior: indirect accesses — the column-index load provides
 * the address for the vector load. Ready bits are ineffective (the
 * data a column index points to may not have arrived yet, since DMA
 * fills sequentially), while a cache fetches arbitrary locations on
 * demand: the paper's clearest cache win (Figure 8g).
 */

#include "workloads/workload_impl.hh"

namespace genie
{

namespace
{

constexpr unsigned rows = 512;
constexpr unsigned nnzPerRow = 6; // uniform CRS rows keep sizes simple
constexpr unsigned nnz = rows * nnzPerRow;

struct Matrix
{
    std::vector<double> vals;
    std::vector<std::int32_t> cols;
    std::vector<std::int32_t> rowDelims;
};

Matrix
makeMatrix()
{
    Rng rng(0x59a7);
    Matrix m;
    m.vals.resize(nnz);
    m.cols.resize(nnz);
    m.rowDelims.resize(rows + 1);
    for (unsigned i = 0; i < nnz; ++i) {
        m.vals[i] = rng.range(-2.0, 2.0);
        m.cols[i] = static_cast<std::int32_t>(rng.below(rows));
    }
    for (unsigned r = 0; r <= rows; ++r)
        m.rowDelims[r] = static_cast<std::int32_t>(r * nnzPerRow);
    return m;
}

std::vector<double>
makeVector()
{
    Rng rng(0x59a8);
    std::vector<double> v(rows);
    for (auto &x : v)
        x = rng.range(-1.0, 1.0);
    return v;
}

} // namespace

class SpmvCrsWorkload : public Workload
{
  public:
    std::string name() const override { return "spmv-crs"; }

    std::string
    description() const override
    {
        return "CRS sparse matrix-vector multiply, 512 rows x 6 nnz; "
               "indirect vector gathers";
    }

    WorkloadOutput
    build() const override
    {
        Matrix m = makeMatrix();
        auto vec = makeVector();
        std::vector<double> out(rows, 0.0);

        TraceBuilder tb;
        int aval = tb.addArray("val", nnz * 8, 8, true, false);
        int acol = tb.addArray("cols", nnz * 4, 4, true, false);
        int adel = tb.addArray("rowDelimiters", (rows + 1) * 4, 4,
                               true, false);
        int avec = tb.addArray("vec", rows * 8, 8, true, false);
        int aout = tb.addArray("out", rows * 8, 8, false, true);

        for (unsigned r = 0; r < rows; ++r) {
            tb.beginIteration();
            NodeId lo = tb.load(adel, r * 4, 4);
            NodeId hi = tb.load(adel, (r + 1) * 4, 4);
            NodeId acc = invalidNode;
            double sum = 0.0;
            unsigned begin = static_cast<unsigned>(m.rowDelims[r]);
            unsigned end = static_cast<unsigned>(m.rowDelims[r + 1]);
            for (unsigned j = begin; j < end; ++j) {
                // The loop bounds come from the delimiter loads.
                NodeId lv = tb.load(aval, j * 8, 8, {lo, hi});
                NodeId lc = tb.load(acol, j * 4, 4, {lo, hi});
                auto col = static_cast<unsigned>(m.cols[j]);
                // Indirect: vec address depends on the cols load.
                NodeId lx = tb.load(avec, col * 8, 8, {lc});
                NodeId mul = tb.op(Opcode::FpMul, {lv, lx});
                acc = acc == invalidNode
                          ? mul
                          : tb.op(Opcode::FpAdd, {acc, mul});
                sum += m.vals[j] * vec[col];
            }
            tb.store(aout, r * 8, 8, {acc});
            out[r] = sum;
        }

        WorkloadOutput result;
        result.trace = tb.take();
        for (double v : out)
            result.checksum += v;
        return result;
    }

    double
    reference() const override
    {
        Matrix m = makeMatrix();
        auto vec = makeVector();
        double checksum = 0.0;
        for (unsigned r = 0; r < rows; ++r) {
            double sum = 0.0;
            for (std::int32_t j = m.rowDelims[r];
                 j < m.rowDelims[r + 1]; ++j) {
                sum += m.vals[static_cast<std::size_t>(j)] *
                       vec[static_cast<std::size_t>(
                           m.cols[static_cast<std::size_t>(j)])];
            }
            checksum += sum;
        }
        return checksum;
    }
};

WorkloadPtr
makeSpmvCrs()
{
    return std::make_unique<SpmvCrsWorkload>();
}

} // namespace genie
