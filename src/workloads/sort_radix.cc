/**
 * @file
 * sort-radix: LSD radix sort with per-digit histogram, prefix scan,
 * and scatter (MachSuite sort/radix).
 *
 * Memory behavior: each pass streams the input, builds a small
 * histogram (register-promoted), then *scatters* elements to
 * data-dependent destinations — the writes are indirect, unlike
 * sort-merge's sequential stores.
 */

#include "workloads/workload_impl.hh"

namespace genie
{

namespace
{

constexpr unsigned count = 512;
constexpr unsigned radixBits = 4;
constexpr unsigned buckets = 1u << radixBits;
constexpr unsigned passes = 20 / radixBits; // keys < 2^20

std::vector<std::int32_t>
makeData()
{
    Rng rng(0x4adb);
    std::vector<std::int32_t> d(count);
    for (auto &v : d)
        v = static_cast<std::int32_t>(rng.below(1u << 20));
    return d;
}

} // namespace

class SortRadixWorkload : public Workload
{
  public:
    std::string name() const override { return "sort-radix"; }

    std::string
    description() const override
    {
        return "LSD radix sort of 512 ints (4-bit digits); "
               "histogram + indirect scatter";
    }

    WorkloadOutput
    build() const override
    {
        auto data = makeData();
        std::vector<std::int32_t> temp(count, 0);

        TraceBuilder tb;
        int aa = tb.addArray("a", count * 4, 4, true, true);
        int at = tb.addArray("b", count * 4, 4, false, false,
                             /*privateScratch=*/true);
        int ah = tb.addArray("bucket", buckets * 4, 4, false, false,
                             /*privateScratch=*/true);

        bool inA = true;
        for (unsigned pass = 0; pass < passes; ++pass) {
            unsigned shift = pass * radixBits;
            int src = inA ? aa : at;
            int dst = inA ? at : aa;
            auto &srcv = inA ? data : temp;
            auto &dstv = inA ? temp : data;

            // Histogram.
            tb.beginIteration();
            unsigned hist[buckets] = {};
            std::vector<NodeId> histStore(buckets, invalidNode);
            for (unsigned i = 0; i < count; ++i) {
                NodeId l = tb.load(src, i * 4, 4);
                NodeId digit = tb.op(Opcode::Shift, {l});
                auto bkt = static_cast<unsigned>(
                    (srcv[i] >> shift) & (buckets - 1));
                std::vector<NodeId> deps = {digit};
                if (histStore[bkt] != invalidNode)
                    deps.push_back(histStore[bkt]);
                NodeId inc = tb.op(Opcode::IntAdd, deps);
                histStore[bkt] = tb.store(ah, bkt * 4, 4, {inc});
                ++hist[bkt];
            }

            // Exclusive prefix scan (tiny, serial).
            tb.beginIteration();
            unsigned offsets[buckets];
            unsigned running = 0;
            NodeId scanPrev = invalidNode;
            for (unsigned bkt = 0; bkt < buckets; ++bkt) {
                NodeId l = tb.load(ah, bkt * 4, 4);
                std::vector<NodeId> deps = {l};
                if (scanPrev != invalidNode)
                    deps.push_back(scanPrev);
                NodeId sum = tb.op(Opcode::IntAdd, deps);
                scanPrev = tb.store(ah, bkt * 4, 4, {sum});
                offsets[bkt] = running;
                running += hist[bkt];
            }

            // Scatter.
            tb.beginIteration();
            for (unsigned i = 0; i < count; ++i) {
                NodeId l = tb.load(src, i * 4, 4);
                NodeId digit = tb.op(Opcode::Shift, {l});
                NodeId lo = tb.load(
                    ah,
                    ((srcv[i] >> shift) & (buckets - 1)) * 4, 4,
                    {digit});
                auto bkt = static_cast<unsigned>(
                    (srcv[i] >> shift) & (buckets - 1));
                unsigned pos = offsets[bkt]++;
                // Destination address depends on the bucket offset.
                tb.store(dst, pos * 4, 4, {l, lo});
                dstv[pos] = srcv[i];
            }
            inA = !inA;
        }

        // passes is even or odd: copy back if the result sits in b.
        if (!inA) {
            tb.beginIteration();
            for (unsigned i = 0; i < count; ++i) {
                NodeId l = tb.load(at, i * 4, 4);
                tb.store(aa, i * 4, 4, {l});
                data[i] = temp[i];
            }
        }

        WorkloadOutput result;
        result.trace = tb.take();
        for (unsigned i = 0; i < count; ++i)
            result.checksum +=
                static_cast<double>(data[i]) * (i % 5 + 1);
        return result;
    }

    double
    reference() const override
    {
        auto data = makeData();
        std::sort(data.begin(), data.end());
        double checksum = 0.0;
        for (unsigned i = 0; i < count; ++i)
            checksum += static_cast<double>(data[i]) * (i % 5 + 1);
        return checksum;
    }
};

WorkloadPtr
makeSortRadix()
{
    return std::make_unique<SortRadixWorkload>();
}

} // namespace genie
