/**
 * @file
 * nw: Needleman-Wunsch DNA sequence alignment (MachSuite nw/nw).
 *
 * Memory behavior: tiny inputs (two short sequences) and a large
 * *internal* dynamic-programming score matrix that the paper keeps in
 * local scratchpads even in cache mode (Section IV-D). The kernel is
 * strongly serial (each cell depends on three earlier cells), so it
 * "doesn't benefit from data parallelism in the first place" and
 * always prefers DMA (Figure 8b).
 */

#include "workloads/workload_impl.hh"

namespace genie
{

namespace
{

constexpr unsigned seqLen = 64;
constexpr unsigned dim = seqLen + 1;
constexpr std::int32_t matchScore = 1;
constexpr std::int32_t mismatchScore = -1;
constexpr std::int32_t gapScore = -1;

std::vector<std::int32_t>
makeSequence(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int32_t> s(seqLen);
    for (auto &c : s)
        c = static_cast<std::int32_t>(rng.below(4)); // ACTG
    return s;
}

} // namespace

class NwWorkload : public Workload
{
  public:
    std::string name() const override { return "nw-nw"; }

    std::string
    description() const override
    {
        return "Needleman-Wunsch alignment of two 64-base sequences; "
               "serial DP over a private score matrix";
    }

    WorkloadOutput
    build() const override
    {
        auto seqA = makeSequence(0x5317a);
        auto seqB = makeSequence(0x5317b);
        std::vector<std::int32_t> matrix(dim * dim, 0);

        TraceBuilder tb;
        int aa = tb.addArray("seqA", seqLen * 4, 4, true, false);
        int ab = tb.addArray("seqB", seqLen * 4, 4, true, false);
        // The score matrix is private intermediate data: local
        // scratchpad in both memory modes.
        int am = tb.addArray("M", dim * dim * 4, 4, false, false,
                             /*privateScratch=*/true);
        int aout = tb.addArray("score", dim * 4, 4, false, true);

        // Boundary initialization.
        tb.beginIteration();
        for (unsigned i = 0; i < dim; ++i) {
            NodeId v = tb.op(Opcode::IntMul, {});
            tb.store(am, i * 4, 4, {v});
            tb.store(am, i * dim * 4, 4, {v});
            matrix[i] = static_cast<std::int32_t>(i) * gapScore;
            matrix[i * dim] = static_cast<std::int32_t>(i) * gapScore;
        }

        // Iterations are 8-cell chunks of the inner loop (Aladdin
        // unrolls the innermost loop): chunk k+1 depends on chunk k's
        // last cell through the DP recurrence, so datapath lanes
        // cannot run ahead — nw "doesn't benefit from data
        // parallelism in the first place" (Section IV-C2).
        constexpr unsigned chunk = 8;
        for (unsigned i = 1; i < dim; ++i) {
            for (unsigned j = 1; j < dim; ++j) {
                if ((j - 1) % chunk == 0)
                    tb.beginIteration();
                NodeId lca = tb.load(aa, (j - 1) * 4, 4);
                NodeId lcb = tb.load(ab, (i - 1) * 4, 4);
                NodeId cmp = tb.op(Opcode::IntCmp, {lca, lcb});
                NodeId ldiag =
                    tb.load(am, ((i - 1) * dim + j - 1) * 4, 4);
                NodeId lup = tb.load(am, ((i - 1) * dim + j) * 4, 4);
                NodeId lleft =
                    tb.load(am, (i * dim + j - 1) * 4, 4);
                NodeId sDiag = tb.op(Opcode::IntAdd, {ldiag, cmp});
                NodeId sUp = tb.op(Opcode::IntAdd, {lup});
                NodeId sLeft = tb.op(Opcode::IntAdd, {lleft});
                NodeId m1 = tb.op(Opcode::IntCmp, {sDiag, sUp});
                NodeId best = tb.op(Opcode::IntCmp, {m1, sLeft});
                tb.store(am, (i * dim + j) * 4, 4, {best});

                std::int32_t match =
                    seqA[j - 1] == seqB[i - 1] ? matchScore
                                               : mismatchScore;
                std::int32_t sd =
                    matrix[(i - 1) * dim + j - 1] + match;
                std::int32_t su = matrix[(i - 1) * dim + j] + gapScore;
                std::int32_t sl = matrix[i * dim + j - 1] + gapScore;
                matrix[i * dim + j] =
                    std::max(sd, std::max(su, sl));
            }
        }

        // Emit the final row as the result.
        tb.beginIteration();
        for (unsigned j = 0; j < dim; ++j) {
            NodeId l = tb.load(am, ((dim - 1) * dim + j) * 4, 4);
            tb.store(aout, j * 4, 4, {l});
        }

        WorkloadOutput result;
        result.trace = tb.take();
        for (unsigned j = 0; j < dim; ++j)
            result.checksum +=
                static_cast<double>(matrix[(dim - 1) * dim + j]);
        return result;
    }

    double
    reference() const override
    {
        auto seqA = makeSequence(0x5317a);
        auto seqB = makeSequence(0x5317b);
        std::vector<std::int32_t> matrix(dim * dim, 0);
        for (unsigned i = 0; i < dim; ++i) {
            matrix[i] = static_cast<std::int32_t>(i) * gapScore;
            matrix[i * dim] = static_cast<std::int32_t>(i) * gapScore;
        }
        for (unsigned i = 1; i < dim; ++i) {
            for (unsigned j = 1; j < dim; ++j) {
                std::int32_t match =
                    seqA[j - 1] == seqB[i - 1] ? matchScore
                                               : mismatchScore;
                std::int32_t sd =
                    matrix[(i - 1) * dim + j - 1] + match;
                std::int32_t su = matrix[(i - 1) * dim + j] + gapScore;
                std::int32_t sl = matrix[i * dim + j - 1] + gapScore;
                matrix[i * dim + j] =
                    std::max(sd, std::max(su, sl));
            }
        }
        double checksum = 0.0;
        for (unsigned j = 0; j < dim; ++j)
            checksum +=
                static_cast<double>(matrix[(dim - 1) * dim + j]);
        return checksum;
    }
};

WorkloadPtr
makeNw()
{
    return std::make_unique<NwWorkload>();
}

} // namespace genie
