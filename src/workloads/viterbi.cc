/**
 * @file
 * viterbi: Viterbi decoding of a hidden Markov model (MachSuite
 * viterbi/viterbi).
 *
 * Memory behavior: dense all-pairs state updates per time step with
 * serial dependences across steps; moderately compute- and
 * memory-balanced. Scores use integer negative-log-likelihoods.
 */

#include "workloads/workload_impl.hh"

namespace genie
{

namespace
{

constexpr unsigned numStates = 16;
constexpr unsigned steps = 24;

struct Hmm
{
    std::vector<std::int32_t> init;     // numStates
    std::vector<std::int32_t> transition; // numStates x numStates
    std::vector<std::int32_t> emission;   // numStates x numStates
    std::vector<std::int32_t> obs;        // steps
};

Hmm
makeHmm()
{
    Rng rng(0x417e);
    Hmm h;
    h.init.resize(numStates);
    h.transition.resize(numStates * numStates);
    h.emission.resize(numStates * numStates);
    h.obs.resize(steps);
    for (auto &v : h.init)
        v = static_cast<std::int32_t>(rng.below(64));
    for (auto &v : h.transition)
        v = static_cast<std::int32_t>(rng.below(64));
    for (auto &v : h.emission)
        v = static_cast<std::int32_t>(rng.below(64));
    for (auto &v : h.obs)
        v = static_cast<std::int32_t>(rng.below(numStates));
    return h;
}

} // namespace

class ViterbiWorkload : public Workload
{
  public:
    std::string name() const override { return "viterbi-viterbi"; }

    std::string
    description() const override
    {
        return "Viterbi decode, 16 states x 24 steps; serial "
               "dynamic programming";
    }

    WorkloadOutput
    build() const override
    {
        Hmm h = makeHmm();
        std::vector<std::int32_t> llike(steps * numStates, 0);

        TraceBuilder tb;
        int aini = tb.addArray("init", numStates * 4, 4, true, false);
        int atra = tb.addArray("transition",
                               numStates * numStates * 4, 4, true,
                               false);
        int aemi = tb.addArray("emission", numStates * numStates * 4,
                               4, true, false);
        int aobs = tb.addArray("obs", steps * 4, 4, true, false);
        int alik = tb.addArray("llike", steps * numStates * 4, 4,
                               false, true);

        // Initial step.
        tb.beginIteration();
        for (unsigned s = 0; s < numStates; ++s) {
            NodeId li = tb.load(aini, s * 4, 4);
            NodeId lo = tb.load(aobs, 0, 4);
            auto obs0 = static_cast<unsigned>(h.obs[0]);
            NodeId le =
                tb.load(aemi, (obs0 * numStates + s) * 4, 4, {lo});
            NodeId sum = tb.op(Opcode::IntAdd, {li, le});
            tb.store(alik, s * 4, 4, {sum});
            llike[s] = h.init[s] +
                       h.emission[obs0 * numStates + s];
        }

        for (unsigned t = 1; t < steps; ++t) {
            tb.beginIteration();
            auto obst = static_cast<unsigned>(h.obs[t]);
            NodeId lo = tb.load(aobs, t * 4, 4);
            for (unsigned cur = 0; cur < numStates; ++cur) {
                NodeId best = invalidNode;
                std::int32_t bestVal = 0;
                for (unsigned prev = 0; prev < numStates; ++prev) {
                    NodeId lp = tb.load(
                        alik, ((t - 1) * numStates + prev) * 4, 4);
                    NodeId lt = tb.load(
                        atra, (prev * numStates + cur) * 4, 4);
                    NodeId sum = tb.op(Opcode::IntAdd, {lp, lt});
                    best = best == invalidNode
                               ? sum
                               : tb.op(Opcode::IntCmp, {best, sum});
                    std::int32_t v =
                        llike[(t - 1) * numStates + prev] +
                        h.transition[prev * numStates + cur];
                    if (prev == 0 || v < bestVal)
                        bestVal = v;
                }
                NodeId le = tb.load(
                    aemi, (obst * numStates + cur) * 4, 4, {lo});
                NodeId total = tb.op(Opcode::IntAdd, {best, le});
                tb.store(alik, (t * numStates + cur) * 4, 4,
                         {total});
                llike[t * numStates + cur] =
                    bestVal + h.emission[obst * numStates + cur];
            }
        }

        WorkloadOutput result;
        result.trace = tb.take();
        for (unsigned s = 0; s < numStates; ++s)
            result.checksum += static_cast<double>(
                llike[(steps - 1) * numStates + s]);
        return result;
    }

    double
    reference() const override
    {
        Hmm h = makeHmm();
        std::vector<std::int32_t> llike(steps * numStates, 0);
        auto obs0 = static_cast<unsigned>(h.obs[0]);
        for (unsigned s = 0; s < numStates; ++s)
            llike[s] =
                h.init[s] + h.emission[obs0 * numStates + s];
        for (unsigned t = 1; t < steps; ++t) {
            auto obst = static_cast<unsigned>(h.obs[t]);
            for (unsigned cur = 0; cur < numStates; ++cur) {
                std::int32_t bestVal = 0;
                for (unsigned prev = 0; prev < numStates; ++prev) {
                    std::int32_t v =
                        llike[(t - 1) * numStates + prev] +
                        h.transition[prev * numStates + cur];
                    if (prev == 0 || v < bestVal)
                        bestVal = v;
                }
                llike[t * numStates + cur] =
                    bestVal + h.emission[obst * numStates + cur];
            }
        }
        double checksum = 0.0;
        for (unsigned s = 0; s < numStates; ++s)
            checksum += static_cast<double>(
                llike[(steps - 1) * numStates + s]);
        return checksum;
    }
};

WorkloadPtr
makeViterbi()
{
    return std::make_unique<ViterbiWorkload>();
}

} // namespace genie
