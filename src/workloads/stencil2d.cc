/**
 * @file
 * stencil-stencil2d: 3x3 convolution over a 2-D grid (MachSuite
 * stencil/stencil2d).
 *
 * Memory behavior: row-streaming with a 3-row working set. Only the
 * first three input rows must arrive before computation can start, so
 * DMA-triggered compute (ready bits) recovers most of the transfer
 * latency (Section IV-C1); a cache captures the 3-row locality with a
 * small capacity, matching DMA performance at lower power (Figure 8d).
 */

#include "workloads/workload_impl.hh"

namespace genie
{

namespace
{

constexpr unsigned rows = 66;
constexpr unsigned cols = 32;

std::vector<std::int32_t>
makeGrid()
{
    Rng rng(0x57e4c11);
    std::vector<std::int32_t> g(rows * cols);
    for (auto &v : g)
        v = static_cast<std::int32_t>(rng.below(256));
    return g;
}

std::vector<std::int32_t>
makeFilter()
{
    Rng rng(0xf117e4);
    std::vector<std::int32_t> f(9);
    for (auto &v : f)
        v = static_cast<std::int32_t>(rng.below(8)) - 3;
    return f;
}

} // namespace

class Stencil2dWorkload : public Workload
{
  public:
    std::string name() const override { return "stencil-stencil2d"; }

    std::string
    description() const override
    {
        return "3x3 stencil over a 66x32 int grid; streaming with "
               "3-row reuse window";
    }

    WorkloadOutput
    build() const override
    {
        auto grid = makeGrid();
        auto filt = makeFilter();
        std::vector<std::int32_t> sol(rows * cols, 0);

        TraceBuilder tb;
        int in = tb.addArray("orig", rows * cols * 4, 4, true, false);
        int coef = tb.addArray("filter", 9 * 4, 4, true, false);
        int out = tb.addArray("sol", rows * cols * 4, 4, false, true);

        for (unsigned r = 0; r < rows - 2; ++r) {
            tb.beginIteration();
            for (unsigned c = 0; c < cols - 2; ++c) {
                NodeId acc = invalidNode;
                std::int32_t sum = 0;
                for (unsigned k1 = 0; k1 < 3; ++k1) {
                    for (unsigned k2 = 0; k2 < 3; ++k2) {
                        NodeId lg = tb.load(
                            in, ((r + k1) * cols + c + k2) * 4, 4);
                        NodeId lf = tb.load(coef, (k1 * 3 + k2) * 4,
                                            4);
                        NodeId mul =
                            tb.op(Opcode::IntMul, {lg, lf});
                        acc = acc == invalidNode
                                  ? mul
                                  : tb.op(Opcode::IntAdd, {acc, mul});
                        sum += grid[(r + k1) * cols + c + k2] *
                               filt[k1 * 3 + k2];
                    }
                }
                tb.store(out, (r * cols + c) * 4, 4, {acc});
                sol[r * cols + c] = sum;
            }
        }

        WorkloadOutput result;
        result.trace = tb.take();
        for (std::int32_t v : sol)
            result.checksum += static_cast<double>(v);
        return result;
    }

    double
    reference() const override
    {
        auto grid = makeGrid();
        auto filt = makeFilter();
        double checksum = 0.0;
        for (unsigned r = 0; r < rows - 2; ++r) {
            for (unsigned c = 0; c < cols - 2; ++c) {
                std::int32_t sum = 0;
                for (unsigned k1 = 0; k1 < 3; ++k1)
                    for (unsigned k2 = 0; k2 < 3; ++k2)
                        sum += grid[(r + k1) * cols + c + k2] *
                               filt[k1 * 3 + k2];
                checksum += static_cast<double>(sum);
            }
        }
        return checksum;
    }
};

WorkloadPtr
makeStencil2d()
{
    return std::make_unique<Stencil2dWorkload>();
}

} // namespace genie
