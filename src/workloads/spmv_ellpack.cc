/**
 * @file
 * spmv-ellpack: sparse matrix-vector multiply in ELLPACK form
 * (MachSuite spmv/ellpack).
 *
 * Memory behavior: rows padded to a fixed nnz width give perfectly
 * regular val/cols streaming (unlike CRS's delimiter walk) — only the
 * vector gathers stay indirect. A useful contrast with spmv-crs when
 * studying how much of the cache advantage comes from irregular row
 * structure vs the gathers themselves.
 */

#include "workloads/workload_impl.hh"

namespace genie
{

namespace
{

constexpr unsigned rows = 512;
constexpr unsigned ellWidth = 6; // padded nnz per row

struct Matrix
{
    std::vector<double> vals;        // rows x ellWidth
    std::vector<std::int32_t> cols;  // rows x ellWidth
};

Matrix
makeMatrix()
{
    Rng rng(0xe11a);
    Matrix m;
    m.vals.resize(rows * ellWidth);
    m.cols.resize(rows * ellWidth);
    for (unsigned i = 0; i < rows * ellWidth; ++i) {
        m.vals[i] = rng.range(-2.0, 2.0);
        m.cols[i] = static_cast<std::int32_t>(rng.below(rows));
    }
    return m;
}

std::vector<double>
makeVector()
{
    Rng rng(0xe11b);
    std::vector<double> v(rows);
    for (auto &x : v)
        x = rng.range(-1.0, 1.0);
    return v;
}

} // namespace

class SpmvEllpackWorkload : public Workload
{
  public:
    std::string name() const override { return "spmv-ellpack"; }

    std::string
    description() const override
    {
        return "ELLPACK sparse matrix-vector multiply, 512 rows x 6 "
               "padded nnz; regular streams + vector gathers";
    }

    WorkloadOutput
    build() const override
    {
        Matrix m = makeMatrix();
        auto vec = makeVector();
        std::vector<double> out(rows, 0.0);

        TraceBuilder tb;
        int aval =
            tb.addArray("nzval", rows * ellWidth * 8, 8, true, false);
        int acol =
            tb.addArray("cols", rows * ellWidth * 4, 4, true, false);
        int avec = tb.addArray("vec", rows * 8, 8, true, false);
        int aout = tb.addArray("out", rows * 8, 8, false, true);

        for (unsigned r = 0; r < rows; ++r) {
            tb.beginIteration();
            NodeId acc = invalidNode;
            double sum = 0.0;
            for (unsigned j = 0; j < ellWidth; ++j) {
                std::size_t idx = r * ellWidth + j;
                NodeId lv = tb.load(aval, idx * 8, 8);
                NodeId lc = tb.load(acol, idx * 4, 4);
                auto col = static_cast<unsigned>(m.cols[idx]);
                NodeId lx = tb.load(avec, col * 8, 8, {lc});
                NodeId mul = tb.op(Opcode::FpMul, {lv, lx});
                acc = acc == invalidNode
                          ? mul
                          : tb.op(Opcode::FpAdd, {acc, mul});
                sum += m.vals[idx] * vec[col];
            }
            tb.store(aout, r * 8, 8, {acc});
            out[r] = sum;
        }

        WorkloadOutput result;
        result.trace = tb.take();
        for (double v : out)
            result.checksum += v;
        return result;
    }

    double
    reference() const override
    {
        Matrix m = makeMatrix();
        auto vec = makeVector();
        double checksum = 0.0;
        for (unsigned r = 0; r < rows; ++r) {
            double sum = 0.0;
            for (unsigned j = 0; j < ellWidth; ++j) {
                std::size_t idx = r * ellWidth + j;
                sum += m.vals[idx] *
                       vec[static_cast<std::size_t>(m.cols[idx])];
            }
            checksum += sum;
        }
        return checksum;
    }
};

WorkloadPtr
makeSpmvEllpack()
{
    return std::make_unique<SpmvEllpackWorkload>();
}

} // namespace genie
