/**
 * @file
 * md-grid: molecular-dynamics force computation over a 3-D cell grid
 * (MachSuite md/grid).
 *
 * Memory behavior: instead of an explicit neighbor list (md-knn),
 * atoms interact with every atom in the 3^3 neighboring cells —
 * nested loops over a blocked spatial structure with high FP
 * intensity and block-local reuse.
 */

#include "workloads/workload_impl.hh"

namespace genie
{

namespace
{

constexpr unsigned gridDim = 3;        // cells per axis
constexpr unsigned densityMax = 4;     // atoms per cell
constexpr unsigned cells = gridDim * gridDim * gridDim;

struct GridData
{
    std::vector<std::int32_t> nPoints;  // atoms per cell
    std::vector<double> posX, posY, posZ;
};

constexpr std::size_t
cellIndex(unsigned x, unsigned y, unsigned z)
{
    return (static_cast<std::size_t>(x) * gridDim + y) * gridDim + z;
}

GridData
makeGrid()
{
    Rng rng(0x3d621);
    GridData g;
    g.nPoints.resize(cells);
    g.posX.resize(cells * densityMax);
    g.posY.resize(cells * densityMax);
    g.posZ.resize(cells * densityMax);
    for (unsigned c = 0; c < cells; ++c) {
        g.nPoints[c] =
            static_cast<std::int32_t>(2 + rng.below(densityMax - 1));
        for (unsigned a = 0; a < densityMax; ++a) {
            g.posX[c * densityMax + a] = rng.range(0.0, 3.0);
            g.posY[c * densityMax + a] = rng.range(0.0, 3.0);
            g.posZ[c * densityMax + a] = rng.range(0.0, 3.0);
        }
    }
    return g;
}

inline void
ljForce(double dx, double dy, double dz, double &f)
{
    double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 == 0.0)
        return;
    double r2inv = 1.0 / r2;
    double r6inv = r2inv * r2inv * r2inv;
    f += r2inv * r6inv * (1.5 * r6inv - 2.0);
}

} // namespace

class MdGridWorkload : public Workload
{
  public:
    std::string name() const override { return "md-grid"; }

    std::string
    description() const override
    {
        return "cell-grid molecular dynamics, 3x3x3 cells x up-to-4 "
               "atoms; FP-dense neighbor-cell loops";
    }

    WorkloadOutput
    build() const override
    {
        GridData g = makeGrid();
        std::vector<double> force(cells * densityMax, 0.0);

        TraceBuilder tb;
        int an = tb.addArray("n_points", cells * 4, 4, true, false);
        int ax = tb.addArray("pos_x", cells * densityMax * 8, 8,
                             true, false);
        int ay = tb.addArray("pos_y", cells * densityMax * 8, 8,
                             true, false);
        int az = tb.addArray("pos_z", cells * densityMax * 8, 8,
                             true, false);
        int af = tb.addArray("force", cells * densityMax * 8, 8,
                             false, true);

        for (unsigned bx = 0; bx < gridDim; ++bx) {
            for (unsigned by = 0; by < gridDim; ++by) {
                for (unsigned bz = 0; bz < gridDim; ++bz) {
                    tb.beginIteration();
                    std::size_t home = cellIndex(bx, by, bz);
                    NodeId lnHome =
                        tb.load(an, home * 4, 4);
                    auto nHome = static_cast<unsigned>(
                        g.nPoints[home]);

                    for (unsigned a = 0; a < nHome; ++a) {
                        std::size_t ai = home * densityMax + a;
                        NodeId iax = tb.load(ax, ai * 8, 8,
                                             {lnHome});
                        NodeId iay = tb.load(ay, ai * 8, 8);
                        NodeId iaz = tb.load(az, ai * 8, 8);
                        NodeId facc = invalidNode;
                        double f = 0.0;

                        // Neighbor cells (clamped 3^3 stencil).
                        for (unsigned nx = bx > 0 ? bx - 1 : 0;
                             nx <= std::min(bx + 1, gridDim - 1);
                             ++nx) {
                        for (unsigned ny = by > 0 ? by - 1 : 0;
                             ny <= std::min(by + 1, gridDim - 1);
                             ++ny) {
                        for (unsigned nz = bz > 0 ? bz - 1 : 0;
                             nz <= std::min(bz + 1, gridDim - 1);
                             ++nz) {
                            std::size_t nbr =
                                cellIndex(nx, ny, nz);
                            NodeId lnN = tb.load(an, nbr * 4, 4);
                            auto nN = static_cast<unsigned>(
                                g.nPoints[nbr]);
                            for (unsigned b = 0; b < nN; ++b) {
                                std::size_t bi =
                                    nbr * densityMax + b;
                                if (bi == ai)
                                    continue;
                                NodeId jx = tb.load(ax, bi * 8, 8,
                                                    {lnN});
                                NodeId jy = tb.load(ay, bi * 8, 8);
                                NodeId jz = tb.load(az, bi * 8, 8);
                                NodeId dx = tb.op(Opcode::FpAdd,
                                                  {iax, jx});
                                NodeId dy = tb.op(Opcode::FpAdd,
                                                  {iay, jy});
                                NodeId dz = tb.op(Opcode::FpAdd,
                                                  {iaz, jz});
                                NodeId r2 = tb.reduce(
                                    Opcode::FpAdd,
                                    {tb.op(Opcode::FpMul, {dx, dx}),
                                     tb.op(Opcode::FpMul, {dy, dy}),
                                     tb.op(Opcode::FpMul,
                                           {dz, dz})});
                                NodeId inv =
                                    tb.op(Opcode::FpDiv, {r2});
                                NodeId r6 = tb.op(
                                    Opcode::FpMul,
                                    {tb.op(Opcode::FpMul,
                                           {inv, inv}),
                                     inv});
                                NodeId pot = tb.op(
                                    Opcode::FpMul,
                                    {r6, tb.op(Opcode::FpAdd,
                                               {r6})});
                                NodeId fterm = tb.op(
                                    Opcode::FpMul, {inv, pot});
                                facc =
                                    facc == invalidNode
                                        ? fterm
                                        : tb.op(Opcode::FpAdd,
                                                {facc, fterm});
                                ljForce(
                                    g.posX[ai] - g.posX[bi],
                                    g.posY[ai] - g.posY[bi],
                                    g.posZ[ai] - g.posZ[bi], f);
                            }
                        }
                        }
                        }
                        tb.store(af, ai * 8, 8,
                                 {facc == invalidNode
                                      ? lnHome
                                      : facc});
                        force[ai] = f;
                    }
                }
            }
        }

        WorkloadOutput result;
        result.trace = tb.take();
        for (double v : force)
            result.checksum += v;
        return result;
    }

    double
    reference() const override
    {
        GridData g = makeGrid();
        double checksum = 0.0;
        for (unsigned bx = 0; bx < gridDim; ++bx) {
        for (unsigned by = 0; by < gridDim; ++by) {
        for (unsigned bz = 0; bz < gridDim; ++bz) {
            std::size_t home = cellIndex(bx, by, bz);
            auto nHome = static_cast<unsigned>(g.nPoints[home]);
            for (unsigned a = 0; a < nHome; ++a) {
                std::size_t ai = home * densityMax + a;
                double f = 0.0;
                for (unsigned nx = bx > 0 ? bx - 1 : 0;
                     nx <= std::min(bx + 1, gridDim - 1); ++nx) {
                for (unsigned ny = by > 0 ? by - 1 : 0;
                     ny <= std::min(by + 1, gridDim - 1); ++ny) {
                for (unsigned nz = bz > 0 ? bz - 1 : 0;
                     nz <= std::min(bz + 1, gridDim - 1); ++nz) {
                    std::size_t nbr = cellIndex(nx, ny, nz);
                    auto nN = static_cast<unsigned>(g.nPoints[nbr]);
                    for (unsigned b = 0; b < nN; ++b) {
                        std::size_t bi = nbr * densityMax + b;
                        if (bi == ai)
                            continue;
                        ljForce(g.posX[ai] - g.posX[bi],
                                g.posY[ai] - g.posY[bi],
                                g.posZ[ai] - g.posZ[bi], f);
                    }
                }
                }
                }
                checksum += f;
            }
        }
        }
        }
        return checksum;
    }
};

WorkloadPtr
makeMdGrid()
{
    return std::make_unique<MdGridWorkload>();
}

} // namespace genie
