/**
 * @file
 * gemm-ncubed: dense matrix-matrix multiply, the classic O(n^3)
 * triply-nested loop (MachSuite gemm/ncubed).
 *
 * Memory behavior: perfectly regular streaming reads of A and B with
 * high compute-to-memory ratio. The paper finds cache-based designs
 * can match DMA performance here but pay extra power for tag/TLB
 * overheads (Figure 8c).
 */

#include "workloads/workload_impl.hh"

namespace genie
{

namespace
{

constexpr unsigned dim = 24; // N x N matrices of doubles

std::vector<double>
makeMatrix(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> m(dim * dim);
    for (auto &v : m)
        v = rng.range(-1.0, 1.0);
    return m;
}

} // namespace

class GemmWorkload : public Workload
{
  public:
    std::string name() const override { return "gemm-ncubed"; }

    std::string
    description() const override
    {
        return "dense 24x24 double GEMM; regular streaming, "
               "compute-dominant";
    }

    WorkloadOutput
    build() const override
    {
        auto matA = makeMatrix(0xa);
        auto matB = makeMatrix(0xb);
        std::vector<double> matC(dim * dim, 0.0);

        TraceBuilder tb;
        int a = tb.addArray("A", dim * dim * 8, 8, true, false);
        int b = tb.addArray("B", dim * dim * 8, 8, true, false);
        int c = tb.addArray("C", dim * dim * 8, 8, false, true);

        for (unsigned i = 0; i < dim; ++i) {
            for (unsigned j = 0; j < dim; ++j) {
                tb.beginIteration();
                NodeId acc = invalidNode;
                double sum = 0.0;
                for (unsigned k = 0; k < dim; ++k) {
                    NodeId la = tb.load(a, (i * dim + k) * 8, 8);
                    NodeId lb = tb.load(b, (k * dim + j) * 8, 8);
                    NodeId mul = tb.op(Opcode::FpMul, {la, lb});
                    acc = acc == invalidNode
                              ? mul
                              : tb.op(Opcode::FpAdd, {acc, mul});
                    sum += matA[i * dim + k] * matB[k * dim + j];
                }
                tb.store(c, (i * dim + j) * 8, 8, {acc});
                matC[i * dim + j] = sum;
            }
        }

        WorkloadOutput out;
        out.trace = tb.take();
        for (double v : matC)
            out.checksum += v;
        return out;
    }

    double
    reference() const override
    {
        auto matA = makeMatrix(0xa);
        auto matB = makeMatrix(0xb);
        double checksum = 0.0;
        for (unsigned i = 0; i < dim; ++i) {
            for (unsigned j = 0; j < dim; ++j) {
                double sum = 0.0;
                for (unsigned k = 0; k < dim; ++k)
                    sum += matA[i * dim + k] * matB[k * dim + j];
                checksum += sum;
            }
        }
        return checksum;
    }
};

WorkloadPtr
makeGemm()
{
    return std::make_unique<GemmWorkload>();
}

} // namespace genie
