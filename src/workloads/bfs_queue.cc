/**
 * @file
 * bfs-queue: breadth-first search with an explicit work queue
 * (MachSuite bfs/queue).
 *
 * Memory behavior: data-dependent, pointer-chasing-like traversal —
 * edge lists are walked from node offsets and level updates are
 * scattered. Parallelism is limited to the frontier; mostly
 * data-movement bound under DMA.
 */

#include "workloads/workload_impl.hh"

#include <deque>

namespace genie
{

namespace
{

constexpr unsigned numNodes = 256;
constexpr unsigned degree = 4;
constexpr unsigned numEdges = numNodes * degree;

struct Graph
{
    std::vector<std::int32_t> edgeBegin; // numNodes + 1
    std::vector<std::int32_t> edges;     // numEdges
};

Graph
makeGraph()
{
    Rng rng(0xbf5);
    Graph g;
    g.edgeBegin.resize(numNodes + 1);
    g.edges.resize(numEdges);
    for (unsigned i = 0; i <= numNodes; ++i)
        g.edgeBegin[i] = static_cast<std::int32_t>(i * degree);
    for (unsigned e = 0; e < numEdges; ++e)
        g.edges[e] = static_cast<std::int32_t>(rng.below(numNodes));
    // Make connectivity likely: node i always links to i+1.
    for (unsigned i = 0; i + 1 < numNodes; ++i)
        g.edges[i * degree] = static_cast<std::int32_t>(i + 1);
    return g;
}

constexpr std::int32_t unvisited = 127;

} // namespace

class BfsQueueWorkload : public Workload
{
  public:
    std::string name() const override { return "bfs-queue"; }

    std::string
    description() const override
    {
        return "queue-based BFS over a 256-node graph; "
               "data-dependent gathers and scatters";
    }

    WorkloadOutput
    build() const override
    {
        Graph g = makeGraph();
        std::vector<std::int32_t> level(numNodes, unvisited);

        TraceBuilder tb;
        int abeg = tb.addArray("nodes", (numNodes + 1) * 4, 4, true,
                               false);
        int aedg = tb.addArray("edges", numEdges * 4, 4, true, false);
        int alvl = tb.addArray("level", numNodes * 4, 4, true, true);
        // The work queue is private intermediate storage.
        int aq = tb.addArray("queue", numNodes * 4, 4, false, false,
                             /*privateScratch=*/true);

        std::deque<std::int32_t> queue;
        level[0] = 0;
        queue.push_back(0);
        // Trace: enqueue the root.
        tb.beginIteration();
        {
            NodeId zero = tb.op(Opcode::Mov, {});
            tb.store(aq, 0, 4, {zero});
            tb.store(alvl, 0, 4, {zero});
        }

        unsigned qHead = 0, qTail = 1;
        while (!queue.empty()) {
            std::int32_t n = queue.front();
            queue.pop_front();
            tb.beginIteration();
            NodeId ln = tb.load(aq, (qHead % numNodes) * 4, 4);
            ++qHead;
            auto un = static_cast<unsigned>(n);
            NodeId lb = tb.load(abeg, un * 4, 4, {ln});
            NodeId le = tb.load(abeg, (un + 1) * 4, 4, {ln});
            for (std::int32_t e = g.edgeBegin[un];
                 e < g.edgeBegin[un + 1]; ++e) {
                NodeId ledge = tb.load(
                    aedg, static_cast<Addr>(e) * 4, 4, {lb, le});
                auto dst = static_cast<unsigned>(
                    g.edges[static_cast<std::size_t>(e)]);
                NodeId llvl = tb.load(alvl, dst * 4, 4, {ledge});
                NodeId cmp = tb.op(Opcode::IntCmp, {llvl});
                if (level[dst] == unvisited) {
                    level[dst] = level[un] + 1;
                    queue.push_back(static_cast<std::int32_t>(dst));
                    NodeId nl = tb.op(Opcode::IntAdd, {cmp});
                    tb.store(alvl, dst * 4, 4, {nl});
                    tb.store(aq, (qTail % numNodes) * 4, 4, {nl});
                    ++qTail;
                }
            }
        }

        WorkloadOutput result;
        result.trace = tb.take();
        for (std::int32_t v : level)
            result.checksum += static_cast<double>(v);
        return result;
    }

    double
    reference() const override
    {
        Graph g = makeGraph();
        std::vector<std::int32_t> level(numNodes, unvisited);
        std::deque<std::int32_t> queue;
        level[0] = 0;
        queue.push_back(0);
        while (!queue.empty()) {
            auto n = static_cast<unsigned>(queue.front());
            queue.pop_front();
            for (std::int32_t e = g.edgeBegin[n];
                 e < g.edgeBegin[n + 1]; ++e) {
                auto dst = static_cast<unsigned>(
                    g.edges[static_cast<std::size_t>(e)]);
                if (level[dst] == unvisited) {
                    level[dst] = level[n] + 1;
                    queue.push_back(static_cast<std::int32_t>(dst));
                }
            }
        }
        double checksum = 0.0;
        for (std::int32_t v : level)
            checksum += static_cast<double>(v);
        return checksum;
    }
};

WorkloadPtr
makeBfsQueue()
{
    return std::make_unique<BfsQueueWorkload>();
}

} // namespace genie
