#include "energy_model.hh"

#include <cmath>

namespace genie
{

double
EnergyModel::opEnergy(FuKind kind)
{
    switch (kind) {
      case FuKind::IntAlu: return 0.35;
      case FuKind::IntMul: return 3.2;
      case FuKind::FpAdd:  return 6.0;
      case FuKind::FpMul:  return 14.0;
      case FuKind::FpDiv:  return 55.0;
      case FuKind::Other:  return 0.2;
    }
    return 0.2;
}

double
EnergyModel::laneLeakage()
{
    // One adder, one multiplier, one FP add, one FP mul, one divider
    // and control per lane; 40 nm-class leakage.
    return 0.22; // mW
}

double
EnergyModel::sramAccessEnergy(double bankKb, bool write)
{
    double read = 1.6 + 1.7 * std::sqrt(bankKb);
    return write ? read * 1.2 : read;
}

double
EnergyModel::spadCrossbarEnergy(unsigned banks)
{
    return 0.25 * std::sqrt(static_cast<double>(banks));
}

double
EnergyModel::sramLeakage(double totalKb, unsigned banks)
{
    // Each bank is its own macro: decoder/sense-amp periphery leaks
    // regardless of capacity, plus capacity-proportional leakage.
    return 0.05 * banks + 0.075 * totalKb;
}

double
EnergyModel::cacheAccessEnergy(double sizeKb, unsigned assoc,
                               unsigned ports, bool write)
{
    double tag = 0.35 * assoc;                    // parallel tag compare
    double data = 1.2 + 1.8 * std::sqrt(sizeKb); // data array
    double portFactor = 1.0 + 0.55 * (ports - 1); // bitline replication
    double e = (tag + data) * portFactor;
    return write ? e * 1.2 : e;
}

double
EnergyModel::cacheLeakage(double sizeKb, unsigned assoc, unsigned ports)
{
    double base = 0.05 + 0.09 * sizeKb + 0.01 * assoc;
    double portFactor = 1.0 + 0.65 * (ports - 1);
    return base * portFactor;
}

double
EnergyModel::tlbAccessEnergy(unsigned entries)
{
    return 0.5 + 0.05 * entries;
}

double
EnergyModel::tlbLeakage(unsigned entries)
{
    return 0.01 + 0.004 * entries;
}

double
EnergyModel::readyBitAccessEnergy()
{
    return 0.08;
}

double
EnergyModel::readyBitLeakage(std::uint64_t bits)
{
    return 0.005 + 1e-5 * static_cast<double>(bits);
}

double
EnergyModel::dmaPerByteEnergy()
{
    return 0.9; // pJ/B: engine control + local memory write
}

} // namespace genie
