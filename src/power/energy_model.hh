/**
 * @file
 * The accelerator energy model.
 *
 * Aladdin characterizes datapath and SRAM power from TSMC 40 nm
 * standard cells and memory compilers; we cannot access those, so this
 * model uses literature-calibrated 40 nm-class constants with
 * CACTI-like analytical scaling:
 *
 *  - per-operation functional-unit energies (integer ALU ops well
 *    under a pJ; FP multiply in the ~10 pJ range; division expensive),
 *  - SRAM access energy growing ~ sqrt(capacity) (bitline/wordline
 *    lengths grow with the square root of the array),
 *  - cache accesses additionally pay tag reads, comparators, and
 *    multi-porting overheads (multi-ported arrays replicate bitlines;
 *    cost grows superlinearly with ports),
 *  - leakage proportional to capacity and port count, plus a fixed
 *    per-lane datapath leakage.
 *
 * Absolute numbers are synthetic; the paper's conclusions depend on
 * the *relative* trends (caches cost more per access than same-sized
 * scratchpad partitions; high port counts are much more expensive for
 * caches than partitioning is for scratchpads; more lanes add leakage
 * and dynamic FU energy), which this model preserves. See DESIGN.md
 * substitution #5.
 */

#ifndef GENIE_POWER_ENERGY_MODEL_HH
#define GENIE_POWER_ENERGY_MODEL_HH

#include <cstdint>

namespace genie
{

/** Functional unit classes for energy/latency lookup. */
enum class FuKind : std::uint8_t
{
    IntAlu,  ///< add/sub/compare/logic/shift
    IntMul,
    FpAdd,   ///< FP add/sub/convert
    FpMul,
    FpDiv,   ///< FP divide / sqrt
    Other,   ///< address generation, moves, control
};

/** All energies in picojoules, all leakage in milliwatts. */
class EnergyModel
{
  public:
    /** Dynamic energy of one operation on a functional unit. */
    static double opEnergy(FuKind kind);

    /** Leakage of one datapath lane's worth of functional units. */
    static double laneLeakage();

    /** Scratchpad/SRAM access energy for a bank of @p bankKb KB. */
    static double sramAccessEnergy(double bankKb, bool write);

    /** Per-access cost of the bank-to-lane crossbar a partitioned
     * scratchpad needs (grows with partition count). */
    static double spadCrossbarEnergy(unsigned banks);

    /** Scratchpad/SRAM leakage for total capacity split into banks
     * (each bank pays its own periphery). */
    static double sramLeakage(double totalKb, unsigned banks);

    /** Cache access energy: tags (assoc comparators) + data array +
     * multi-port replication overhead. */
    static double cacheAccessEnergy(double sizeKb, unsigned assoc,
                                    unsigned ports, bool write);

    /** Cache leakage, including port replication overhead. */
    static double cacheLeakage(double sizeKb, unsigned assoc,
                               unsigned ports);

    /** Accelerator TLB access energy / leakage. */
    static double tlbAccessEnergy(unsigned entries);
    static double tlbLeakage(unsigned entries);

    /** Full/empty ready-bit SRAM: per-check energy and leakage. */
    static double readyBitAccessEnergy();
    static double readyBitLeakage(std::uint64_t bits);

    /** Energy of moving one byte through the DMA path into local
     * memory (engine + local write amortized). */
    static double dmaPerByteEnergy();
};

} // namespace genie

#endif // GENIE_POWER_ENERGY_MODEL_HH
